"""Ablation studies for the design choices the paper motivates.

* ``ablation-alternation`` — the α→(α,β), β→(β,α) operator pattern vs
  α-only / β-only (Section 2.3's replication-minimization heuristic).
* ``ablation-hash-family`` — bit-string vs prime-divisor hash functions
  (Section 3 / Table 3).
* ``ablation-firing`` — hash firing probability sweep around the derived
  optimum q* = λ/(1+λ) (Section 3, "Optimal hash functions").
* ``ablation-portions`` — portioned partition records vs the paper's
  rejected monolithic-record design (Section 5, footnote 6).
* ``ablation-buffer`` — buffer replacement policies (held "identical for
  every algorithm" in the paper; varied here).
* ``ablation-hybrid`` — the future-work cardinality-split hybrid vs plain
  DCJ and PSJ (Section 7).
"""

from __future__ import annotations

import time

from ..analysis.simulate import make_partitioner
from ..analysis.timemodel import PAPER_TIME_MODEL
from ..core.dcj import DCJPartitioner
from ..core.hashing import (
    BitstringHashFamily,
    optimal_no_fire_probability,
    step_comparison_factor,
)
from ..core.hybrid import hybrid_join
from ..core.operator import run_disk_join
from ..core.partitioning import PartitionAssignment
from ..data.workloads import uniform_workload
from .base import ExperimentResult, register

__all__ = [
    "run_alternation",
    "run_hash_family",
    "run_firing",
    "run_portions",
    "run_buffer",
    "run_hybrid",
]


def _default_workload(seed: int = 9):
    return uniform_workload(
        800, 800, 25, 50, domain_size=50_000, seed=seed, planted_pairs=5
    ).materialize()


@register("ablation-alternation")
def run_alternation(k: int = 64, seed: int = 9) -> ExperimentResult:
    """Operator-pattern ablation: replication with and without alternation."""
    lhs, rhs = _default_workload(seed)
    theta_r, theta_s = 25, 50
    result = ExperimentResult(
        experiment_id="ablation-alternation",
        title=f"DCJ operator patterns (k={k})",
        columns=["pattern", "comparisons", "comp_factor", "replicated",
                 "repl_factor"],
    )
    for pattern in ("alternating", "alpha", "beta"):
        partitioner = DCJPartitioner.for_cardinalities(
            k, theta_r, theta_s, pattern=pattern
        )
        assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
        result.rows.append(
            {
                "pattern": pattern,
                "comparisons": assignment.comparisons,
                "comp_factor": assignment.comparison_factor,
                "replicated": assignment.replicated_signatures,
                "repl_factor": assignment.replication_factor,
            }
        )
    by_pattern = {row["pattern"]: row for row in result.rows}
    result.check("alternating pattern replicates least",
                 by_pattern["alternating"]["replicated"]
                 <= min(by_pattern["alpha"]["replicated"],
                        by_pattern["beta"]["replicated"]))
    result.check("comparison counts are pattern-independent",
                 len({row["comparisons"] for row in result.rows}) == 1)
    result.paper_claims = [
        "The alternating heuristic minimizes replication by always using β "
        "on partitions replicated in the previous step "
        f"[measured repl: alternating {by_pattern['alternating']['repl_factor']:.2f} "
        f"vs α-only {by_pattern['alpha']['repl_factor']:.2f} "
        f"vs β-only {by_pattern['beta']['repl_factor']:.2f}]",
    ]
    return result


@register("ablation-hash-family")
def run_hash_family(k: int = 64, seed: int = 9) -> ExperimentResult:
    """Bit-string vs prime-divisor construction of the hash functions."""
    lhs, rhs = _default_workload(seed)
    theta_r, theta_s = 25, 50
    result = ExperimentResult(
        experiment_id="ablation-hash-family",
        title=f"Hash-function constructions for DCJ (k={k})",
        columns=["family", "comp_factor", "repl_factor"],
    )
    for kind in ("bitstring", "primes"):
        partitioner = DCJPartitioner.for_cardinalities(
            k, theta_r, theta_s, family_kind=kind
        )
        assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
        result.rows.append(
            {
                "family": kind,
                "comp_factor": assignment.comparison_factor,
                "repl_factor": assignment.replication_factor,
            }
        )
    comp_values = [row["comp_factor"] for row in result.rows]
    result.check("bit-string and prime families within 50% of each other",
                 max(comp_values) <= 1.5 * min(comp_values))
    result.paper_claims = [
        "Both the bit-string construction (§3) and disjoint prime sets "
        "(Table 3 / [MGM01]) realize monotone functions with tunable "
        "firing probability; performance should be comparable.",
    ]
    return result


@register("ablation-firing")
def run_firing(k: int = 64, seed: int = 9,
               theta_r: int = 25, theta_s: int = 50) -> ExperimentResult:
    """Sweep the hash firing probability around the derived optimum."""
    lhs, rhs = _default_workload(seed)
    lam = theta_s / theta_r
    q_star = optimal_no_fire_probability(lam)
    levels = k.bit_length() - 1
    result = ExperimentResult(
        experiment_id="ablation-firing",
        title=f"Firing-probability sweep (k={k}, λ={lam:g})",
        columns=["bitstring_b", "q_on_R", "comp_factor_measured",
                 "comp_factor_predicted"],
    )
    for b in (theta_r // 2, theta_r, 2 * theta_r, 3 * theta_r, 6 * theta_r):
        if b < levels:
            continue
        family = BitstringHashFamily(b, num_functions=levels)
        partitioner = DCJPartitioner(family, levels)
        assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
        q = (1.0 - 1.0 / b) ** theta_r
        result.rows.append(
            {
                "bitstring_b": b,
                "q_on_R": q,
                "comp_factor_measured": assignment.comparison_factor,
                "comp_factor_predicted": step_comparison_factor(q, lam) ** levels,
            }
        )
    optimal_b = 1.0 / (1.0 - q_star ** (1.0 / theta_r))
    best_row = min(result.rows, key=lambda row: row["comp_factor_measured"])
    result.check("measured minimum is interior, near the derived optimum q*",
                 abs(best_row["q_on_R"] - q_star) < 0.25)
    result.check("measured factors track the per-step formula within 5%",
                 all(abs(row["comp_factor_measured"]
                         - row["comp_factor_predicted"])
                     <= 0.05 * max(row["comp_factor_predicted"], 1e-9)
                     for row in result.rows))
    result.paper_claims = [
        f"The optimal no-fire probability is q* = λ/(1+λ) = {q_star:.3f}, "
        f"achieved at b ≈ {optimal_b:.0f}; the measured comparison factor "
        "should be minimal near that b and match the per-step formula "
        "1 − q^λ + q^{1+λ}.",
    ]
    return result


@register("ablation-portions")
def run_portions(k: int = 64, seed: int = 9, clock=None) -> ExperimentResult:
    """Portioned partition records vs one monolithic record per partition.

    The workload is sized so monolithic records stay within the B-tree's
    record limit; the read-modify-write on every append still makes the
    partitioning phase measurably slower, which is exactly the degradation
    the paper observed before switching to portions.  At larger partition
    sizes the monolithic layout fails outright (records outgrow a page) —
    see the test suite's ``test_monolithic_overflows``.
    """
    clock = clock if clock is not None else time.perf_counter
    lhs, rhs = uniform_workload(
        150, 150, 10, 20, domain_size=20_000, seed=seed, planted_pairs=3
    ).materialize()
    partitioner_args = ("DCJ", k, 10, 20)
    result = ExperimentResult(
        experiment_id="ablation-portions",
        title=f"Partition record layout (k={k})",
        columns=["layout", "t_partition_s", "t_total_s", "page_writes", "ok"],
    )
    outcomes = {}
    for layout, monolithic in (("portioned", False), ("monolithic", True)):
        partitioner = make_partitioner(*partitioner_args, seed=seed)
        started = clock()
        try:
            pairs, metrics = run_disk_join(
                lhs, rhs, partitioner, monolithic_partitions=monolithic
            )
            row = {
                "layout": layout,
                "t_partition_s": metrics.partitioning.seconds,
                "t_total_s": metrics.total_seconds,
                "page_writes": metrics.total_page_writes,
                "ok": True,
            }
            outcomes[layout] = (pairs, metrics)
        except Exception as error:  # monolithic overflows on large partitions
            row = {
                "layout": layout,
                "t_partition_s": clock() - started,
                "t_total_s": float("nan"),
                "page_writes": 0,
                "ok": f"failed: {type(error).__name__}",
            }
        result.rows.append(row)
    by_layout = {row["layout"]: row for row in result.rows}
    result.check("portioned layout partitions faster than monolithic",
                 by_layout["portioned"]["ok"] is True
                 and by_layout["monolithic"]["ok"] is True
                 and by_layout["portioned"]["t_partition_s"]
                 < by_layout["monolithic"]["t_partition_s"])
    result.paper_claims = [
        "Appending to a single record per partition degrades with partition "
        "size; splitting partitions into equal portions keyed by (portion, "
        "partition index) proved much more efficient (Section 5, fn. 6).",
    ]
    if len(outcomes) == 2:
        result.notes = [
            "Both layouts returned "
            + ("identical" if outcomes["portioned"][0] == outcomes["monolithic"][0]
               else "DIFFERENT")
            + " join results.",
        ]
    return result


@register("ablation-buffer")
def run_buffer(k: int = 32, seed: int = 9,
               buffer_pages: int = 48) -> ExperimentResult:
    """Buffer replacement policy under a tight memory budget."""
    lhs, rhs = _default_workload(seed)
    result = ExperimentResult(
        experiment_id="ablation-buffer",
        title=f"Buffer replacement policies ({buffer_pages} pages)",
        columns=["policy", "t_total_s", "page_reads", "page_writes"],
    )
    for policy in ("lru", "clock", "fifo"):
        partitioner = make_partitioner("DCJ", k, 25, 50, seed=seed)
        __, metrics = run_disk_join(
            lhs, rhs, partitioner,
            buffer_pages=buffer_pages, buffer_policy=policy,
        )
        result.rows.append(
            {
                "policy": policy,
                "t_total_s": metrics.total_seconds,
                "page_reads": metrics.total_page_reads,
                "page_writes": metrics.total_page_writes,
            }
        )
    reads = [row["page_reads"] for row in result.rows]
    result.check("all three policies complete with comparable I/O (≤2x)",
                 max(reads) <= 2 * max(1, min(reads)))
    result.paper_claims = [
        "The paper holds the buffer management policy constant across "
        "algorithms; this ablation varies it to show the operator's I/O "
        "pattern (sequential portion scans) is policy-insensitive.",
    ]
    return result


@register("ablation-options")
def run_options(k: int = 32, seed: int = 9) -> ExperimentResult:
    """The Section 6 implementation options: resident partitions and
    candidate spilling, against the plain operator."""
    lhs, rhs = _default_workload(seed)
    configurations = (
        ("baseline", {}),
        ("resident=k/2", {"resident_partitions": k // 2}),
        ("resident=k", {"resident_partitions": k}),
        ("spill candidates", {"spill_candidates": True}),
    )
    result = ExperimentResult(
        experiment_id="ablation-options",
        title=f"Operator implementation options (k={k})",
        columns=["configuration", "t_total_s", "disk_signatures",
                 "resident_signatures", "page_writes", "results"],
    )
    reference = None
    for label, options in configurations:
        partitioner = make_partitioner("DCJ", k, 25, 50, seed=seed)
        pairs, metrics = run_disk_join(lhs, rhs, partitioner, **options)
        reference = pairs if reference is None else reference
        assert pairs == reference
        result.rows.append(
            {
                "configuration": label,
                "t_total_s": metrics.total_seconds,
                "disk_signatures": metrics.replicated_signatures,
                "resident_signatures": metrics.resident_signatures,
                "page_writes": metrics.total_page_writes,
                "results": metrics.result_size,
            }
        )
    by_config = {row["configuration"]: row for row in result.rows}
    result.check("resident partitions eliminate partition disk signatures",
                 by_config["resident=k"]["disk_signatures"] == 0)
    result.check("all configurations return identical results",
                 len({row["results"] for row in result.rows}) == 1)
    result.paper_claims = [
        "\"Keeping a fixed number of partitions permanently in main memory "
        "improves the execution time when much memory is available\" and "
        "\"separating the joining phase and the verification phase by "
        "first writing out potentially joining tuple identifiers ... may "
        "improve performance\" (Section 6).",
    ]
    result.notes = [
        "All configurations return identical join results.",
        "Resident partitions trade partition I/O for memory.  Candidate "
        "spilling routes candidates through a temporary B-tree; with a "
        "large buffer pool the tree stays cached (no extra page writes) "
        "and only the bookkeeping overhead shows.",
    ]
    return result


@register("ablation-modulo")
def run_modulo(seed: int = 9) -> ExperimentResult:
    """Non-power-of-two k via modulo folding (Section 5's closing remark)."""
    from ..core.modulo import dcj_with_any_k

    lhs, rhs = _default_workload(seed)
    result = ExperimentResult(
        experiment_id="ablation-modulo",
        title="DCJ at non-power-of-two partition counts (modulo folding)",
        columns=["k", "comparisons", "comp_factor", "replicated",
                 "repl_factor"],
    )
    for k in (16, 24, 32, 48, 64):
        partitioner = dcj_with_any_k(k, 25, 50)
        assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
        result.rows.append(
            {
                "k": k,
                "comparisons": assignment.comparisons,
                "comp_factor": assignment.comparison_factor,
                "replicated": assignment.replicated_signatures,
                "repl_factor": assignment.replication_factor,
            }
        )
    result.paper_claims = [
        "\"The limitation in choosing k can be addressed using the modulo "
        "approach suggested in [HM97]\"; execution cost at k = 48 should "
        "land between the k = 32 and k = 64 power-of-two points.",
    ]
    by_k = {row["k"]: row for row in result.rows}
    result.check("k=48 comparison factor between k=64 and k=32",
                 by_k[64]["comp_factor"] <= by_k[48]["comp_factor"]
                 <= by_k[32]["comp_factor"])
    between = (
        by_k[64]["comp_factor"]
        <= by_k[48]["comp_factor"]
        <= by_k[32]["comp_factor"]
    )
    result.notes = [f"comp_factor(48) between comp_factor(64) and comp_factor(32): {between}"]
    return result


@register("ablation-skew")
def run_skew(k: int = 32, seed: int = 9) -> ExperimentResult:
    """Element skew vs PSJ's ``e mod k`` routing: two distinct failure modes.

    The analytical model assumes uniformly drawn elements (Section 3,
    assumption 1).  Two different violations behave very differently:

    * **arithmetic structure** — element values sharing a stride (here:
      multiples of 8) hit only ``k/stride`` partitions under raw modulo.
      Pre-hashing the values (footnote 1's "mapped onto integers using
      hashing") restores balance completely.
    * **frequency skew** — self-similar (80/20) elements: a few *hot*
      elements occur in most sets, so whichever partition owns a hot
      element receives a copy of nearly every S-tuple.  Hashing merely
      relocates the hot partition; it cannot fix frequency skew — a
      structural weakness of element-value partitioning that DCJ's
      whole-set hash functions do not share.
    """
    import random as random_module

    from ..core.psj import PSJPartitioner
    from ..core.sets import Relation, SetTuple
    from ..data.workloads import accuracy_workload

    result = ExperimentResult(
        experiment_id="ablation-skew",
        title=f"Element skew and PSJ partition balance (k={k})",
        columns=["elements", "router", "comp_factor", "max/mean partition"],
    )

    def strided_relations():
        rng = random_module.Random(seed)
        def build(size, theta, name):
            relation = Relation(name=name)
            for tid in range(size):
                relation.add(SetTuple(tid, frozenset(
                    8 * value for value in rng.sample(range(5_000), theta)
                )))
            return relation
        return build(600, 20, "R"), build(600, 40, "S")

    workloads = {
        "uniform": accuracy_workload("uniform", "constant", size=600,
                                     theta_r=20, theta_s=40,
                                     seed=seed).materialize(),
        "strided (×8)": strided_relations(),
        "selfsimilar": accuracy_workload("selfsimilar", "constant", size=600,
                                         theta_r=20, theta_s=40,
                                         seed=seed).materialize(),
    }
    for element_kind, (lhs, rhs) in workloads.items():
        for label, hash_elements in (("e mod k", False), ("hash(e) mod k", True)):
            partitioner = PSJPartitioner(k, seed=seed,
                                         hash_elements=hash_elements)
            assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
            sizes = [len(part) for part in assignment.s_partitions]
            mean_size = sum(sizes) / len(sizes) if sizes else 0.0
            imbalance = max(sizes) / mean_size if mean_size else 0.0
            result.rows.append(
                {
                    "elements": element_kind,
                    "router": label,
                    "comp_factor": assignment.comparison_factor,
                    "max/mean partition": imbalance,
                }
            )
    by_key = {(row["elements"], row["router"]): row for row in result.rows}
    result.check(
        "arithmetic stride cripples raw modulo (max/mean ≥ 3)",
        by_key[("strided (×8)", "e mod k")]["max/mean partition"] >= 3.0,
    )
    result.check(
        "hashing fixes arithmetic structure",
        by_key[("strided (×8)", "hash(e) mod k")]["max/mean partition"] < 1.5,
    )
    result.check(
        "frequency skew imbalances partitions regardless of router "
        "(worse than the uniform baseline under both)",
        by_key[("selfsimilar", "e mod k")]["max/mean partition"]
        > by_key[("uniform", "e mod k")]["max/mean partition"]
        and by_key[("selfsimilar", "hash(e) mod k")]["max/mean partition"]
        > by_key[("uniform", "hash(e) mod k")]["max/mean partition"],
    )
    result.paper_claims = [
        "Assumption 1 (Section 3): elements are uniform; \"non-integer "
        "domains can be mapped onto integers using hashing\" (footnote 1).",
    ]
    result.notes = [
        "Reproduction finding: hashing repairs *value-structure* skew but "
        "not *frequency* skew — hot elements drag most S-tuples into one "
        "partition wherever it lands.  Element-value partitioning (PSJ) "
        "is structurally exposed to hot elements; DCJ's monotone set-level "
        "hash functions are not.",
    ]
    return result


@register("ablation-hybrid")
def run_hybrid(seed: int = 9) -> ExperimentResult:
    """The future-work hybrid vs plain DCJ and PSJ on a mixed workload."""
    from ..core.sets import Relation

    small_r, small_s = uniform_workload(
        400, 400, 8, 12, domain_size=50_000, seed=seed, planted_pairs=3
    ).materialize()
    big_r, big_s = uniform_workload(
        400, 400, 60, 120, domain_size=50_000, seed=seed + 1, planted_pairs=3
    ).materialize()
    lhs = Relation(name="R_mixed")
    rhs = Relation(name="S_mixed")
    for offset, row in enumerate(list(small_r) + list(big_r)):
        lhs.add(type(row)(offset, row.elements))
    for offset, row in enumerate(list(small_s) + list(big_s)):
        rhs.add(type(row)(offset, row.elements))

    result = ExperimentResult(
        experiment_id="ablation-hybrid",
        title="Cardinality-split hybrid vs plain DCJ / PSJ (mixed workload)",
        columns=["algorithm", "comparisons", "replicated", "t_total_s", "results"],
    )
    reference = None
    for algorithm in ("DCJ", "PSJ"):
        partitioner = make_partitioner(algorithm, 64,
                                       lhs.average_cardinality(),
                                       rhs.average_cardinality(), seed=seed)
        pairs, metrics = run_disk_join(lhs, rhs, partitioner)
        reference = pairs if reference is None else reference
        result.rows.append(
            {
                "algorithm": algorithm,
                "comparisons": metrics.signature_comparisons,
                "replicated": metrics.replicated_signatures,
                "t_total_s": metrics.total_seconds,
                "results": metrics.result_size,
            }
        )
    outcome = hybrid_join(lhs, rhs, PAPER_TIME_MODEL, seed=seed)
    result.rows.append(
        {
            "algorithm": f"Hybrid(τ={outcome.tau})",
            "comparisons": outcome.total_comparisons,
            "replicated": outcome.total_replicated,
            "t_total_s": outcome.total_seconds,
            "results": len(outcome.result),
        }
    )
    if reference is not None:
        result.check("hybrid output matches the plain algorithms",
                     outcome.result == reference)
    result.paper_claims = [
        "Section 7 (future work): a hybrid combining the strengths of PSJ "
        "(small sets) and DCJ (large sets).  The reproduction's hybrid "
        "splits by cardinality and plans each quadrant with the analytical "
        "optimizer.",
    ]
    if reference is not None:
        result.notes = [
            "Hybrid result matches plain algorithms: "
            + str(outcome.result == reference),
            "Quadrant plans: "
            + ", ".join(
                f"{label}→{plan.algorithm}(k={plan.k})"
                for label, plan, __ in outcome.quadrants
            ),
        ]
    return result
