"""Sharded-execution scaling: wall time and replication vs shard count.

Not a figure from the paper — its testbed is a single machine — but the
question its divide-and-conquer structure raises at the next level of
division: distribute the relations over N independent databases
(:mod:`repro.dist`) and measure (a) that the result set *and* the
paper's x/y accounting stay bit-identical at every shard count (the
default occupancy pruning is provably exact — see ``docs/sharding.md``),
(b) how wall time moves as shards absorb the work, and (c) what the
containment-aware R replication costs (copies shipped per R row).

With ``history=`` the snapshot is appended to ``BENCH_history.jsonl``
(kind ``dist_scaling``), giving the bench harness a recorded multi-shard
speedup curve to compare across PRs.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from ..analysis.simulate import make_partitioner
from ..data.workloads import case_study
from ..dist import ShardedDatabase, deterministic_partitioner
from .base import ExperimentResult, register

__all__ = ["run"]

SHARD_COUNTS = (1, 2, 4)
THETA_R, THETA_S = 50, 100
K = 32


@register("dist")
def run(
    scale: float = 0.05,
    seed: int = 7,
    fanout: str = "thread",
    engine: str = "numpy",
    history: "str | None" = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="dist",
        title=f"Sharded-execution scaling ({fanout} fan-out, k={K}, "
        f"scale {scale})",
        columns=["algorithm", "shards", "t_total_s", "speedup",
                 "repl_factor", "comparisons", "results"],
    )
    lhs, rhs = case_study(scale=scale, seed=seed).materialize()
    snapshot_rows = []
    with tempfile.TemporaryDirectory(prefix="setjoins-dist-") as tmpdir:
        for algorithm in ("DCJ", "PSJ"):
            baseline = None
            baseline_seconds = None
            for shards in SHARD_COUNTS:
                # The coordinator would sanitize the partitioner itself;
                # doing it here keeps the shards=1 baseline and the
                # multi-shard runs on the identical assignment function.
                partitioner = deterministic_partitioner(make_partitioner(
                    algorithm, K, THETA_R, THETA_S, seed=seed
                ))
                path = os.path.join(tmpdir, f"{algorithm}-{shards}.db")
                with ShardedDatabase.open(
                    path, shards=shards, fanout=fanout
                ) as db:
                    db.create_relation("R", lhs)
                    db.create_relation("S", rhs)
                    started = time.perf_counter()
                    pairs, metrics = db.join(
                        "R", "S", partitioner=partitioner, engine=engine
                    )
                    seconds = time.perf_counter() - started
                    report = db.last_placement
                if baseline is None:
                    baseline = (pairs, metrics.signature_comparisons,
                                metrics.replicated_signatures)
                    baseline_seconds = seconds
                else:
                    result.check(
                        f"{algorithm}: shards={shards} result set and "
                        "x/y counts identical to shards=1",
                        pairs == baseline[0]
                        and metrics.signature_comparisons == baseline[1]
                        and metrics.replicated_signatures == baseline[2],
                    )
                speedup = baseline_seconds / seconds if seconds else 0.0
                row = {
                    "algorithm": algorithm,
                    "shards": shards,
                    "t_total_s": seconds,
                    "speedup": round(speedup, 3),
                    "repl_factor": round(report.replication_factor, 3),
                    "comparisons": metrics.signature_comparisons,
                    "results": len(pairs),
                }
                result.rows.append(row)
                snapshot_rows.append(dict(row))
    cores = os.cpu_count() or 1
    result.notes.append(
        f"measured on {cores} core(s); shard fan-out is {fanout}-level "
        "while each shard's own join may use the parallel backends, so "
        "wall-time scaling is hardware-bound — the invariance checks "
        "hold on any machine"
    )
    result.notes.append(
        "repl_factor = average shard copies shipped per R row (1.0 = no "
        "replication, N = full broadcast); the replication overhead the "
        "containment semantics force"
    )
    result.paper_claims = [
        "Divide-and-conquer extends across databases: hash-placing S and "
        "replicating R by partition occupancy keeps the result and the "
        "x/y accounting the time model is calibrated on bit-identical at "
        "every shard count.",
    ]
    if history is not None:
        _append_history(history, scale, seed, fanout, snapshot_rows)
        result.notes.append(f"snapshot appended to {history}")
    return result


def _append_history(path: str, scale: float, seed: int, fanout: str,
                    rows: "list[dict]", now=time.time) -> None:
    # ``now`` is the injected wall clock (default-reference idiom the CI
    # clock lint sanctions): tests can pin the timestamp.
    record = {
        "kind": "dist_scaling",
        "scale": scale,
        "seed": seed,
        "fanout": fanout,
        "rows": rows,
        "recorded_at": now(),
    }
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
