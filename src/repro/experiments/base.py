"""Shared experiment infrastructure: results, table rendering, registry."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import ConfigurationError

__all__ = ["ExperimentResult", "format_table", "register", "get_experiment",
           "experiment_ids", "EXPERIMENTS"]


@dataclass
class ExperimentResult:
    """Output of one reproduced figure/table.

    ``rows`` are plain dicts sharing the keys in ``columns``; ``series``
    optionally groups rows for figure-like output (one series per curve).
    ``paper_claims`` records what the paper states for the same artifact so
    reports can show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_claims: list[str] = field(default_factory=list)
    #: machine-checkable claim verdicts: (short description, passed)
    checks: list[tuple[str, bool]] = field(default_factory=list)

    def check(self, description: str, passed: bool) -> bool:
        """Record one claim verdict; returns it (as bool) for chaining."""
        verdict = bool(passed)
        self.checks.append((description, verdict))
        return verdict

    @property
    def all_checks_pass(self) -> bool:
        return all(passed for __, passed in self.checks)

    def render(self) -> str:
        """Human-readable report: title, table, paper claims, notes."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.columns, self.rows))
        if self.paper_claims:
            parts.append("Paper claims:")
            parts.extend(f"  * {claim}" for claim in self.paper_claims)
        if self.checks:
            parts.append("Checks:")
            parts.extend(
                f"  [{'PASS' if passed else 'FAIL'}] {description}"
                for description, passed in self.checks
            )
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  * {note}" for note in self.notes)
        return "\n".join(parts)

    def to_tsv(self) -> str:
        """Machine-readable tab-separated rows (header + data)."""
        lines = ["\t".join(str(column) for column in self.columns)]
        for row in self.rows:
            lines.append(
                "\t".join(str(row.get(column, "")) for column in self.columns)
            )
        return "\n".join(lines) + "\n"

    def save(self, directory: str) -> tuple[str, str]:
        """Write ``<id>.txt`` (report) and ``<id>.tsv`` (data) into
        ``directory``; returns the two paths."""
        import os

        os.makedirs(directory, exist_ok=True)
        txt_path = os.path.join(directory, f"{self.experiment_id}.txt")
        tsv_path = os.path.join(directory, f"{self.experiment_id}.tsv")
        with open(txt_path, "w") as handle:
            handle.write(self.render() + "\n")
        with open(tsv_path, "w") as handle:
            handle.write(self.to_tsv())
        return txt_path, tsv_path


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[dict]) -> str:
    """Render rows as a fixed-width text table."""
    table = [[str(column) for column in columns]]
    for row in rows:
        table.append([_format_cell(row.get(column, "")) for column in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    rendered = []
    for line_index, line in enumerate(table):
        rendered.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
        if line_index == 0:
            rendered.append("  ".join("-" * width for width in widths))
    return "\n".join(rendered)


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator registering an experiment's ``run`` function by id."""

    def wrap(function: Callable[..., ExperimentResult]):
        if experiment_id in EXPERIMENTS:
            raise ConfigurationError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENTS[experiment_id] = function
        return function

    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment by id.

    The returned callable runs the experiment under an
    ``experiment:<id>`` span on the ambient tracer (a no-op unless one
    is active — see :mod:`repro.obs.trace`), so harness runs traced via
    ``setjoins experiment <id> --trace`` get every join's span tree
    grouped per experiment.
    """
    try:
        function = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(EXPERIMENTS))}"
        ) from None

    @functools.wraps(function)
    def traced(*args, **kwargs) -> ExperimentResult:
        from ..obs.trace import current_tracer

        with current_tracer().span(f"experiment:{experiment_id}"):
            return function(*args, **kwargs)

    return traced


def experiment_ids() -> list[str]:
    return sorted(EXPERIMENTS)
