"""Reproduction of the paper's running example (Tables 1-4, Figures 1-3).

Relations R = {a, b, c, d} and S = {A, B, C, D} of Table 1, the 4-bit
signatures of Table 2, PSJ partitioning with the element choices of
Figure 1 (9 comparisons, 16 replicated), and DCJ with the hash values of
Table 4 yielding Figure 2's result (8 comparisons, 14 replicated).
"""

from __future__ import annotations

from ..core.dcj import DCJPartitioner
from ..core.hashing import paper_example_family, paper_table4_family
from ..core.nested_loop import signature_nested_loop_join
from ..core.partitioning import PartitionAssignment
from ..core.psj import PSJPartitioner
from ..core.sets import Relation, containment_pairs_nested_loop
from ..core.signatures import signature_of
from .base import ExperimentResult, register

__all__ = ["paper_relations", "run"]

SET_NAMES_R = ("a", "b", "c", "d")
SET_NAMES_S = ("A", "B", "C", "D")
PSJ_PINNED_ELEMENTS = {
    frozenset({1, 5}): 5,
    frozenset({10, 13}): 10,
    frozenset({1, 3}): 3,
    frozenset({8, 19}): 19,
}


def paper_relations() -> tuple[Relation, Relation]:
    """Table 1's relations; tids 0..3 correspond to a..d and A..D."""
    lhs = Relation.from_sets([{1, 5}, {10, 13}, {1, 3}, {8, 19}], name="R")
    rhs = Relation.from_sets(
        [{1, 5, 7}, {8, 10, 13}, {1, 3, 13}, {2, 3, 4}], name="S"
    )
    return lhs, rhs


@register("worked-example")
def run() -> ExperimentResult:
    """Regenerate every number of the Section 2 walkthrough."""
    lhs, rhs = paper_relations()
    result = ExperimentResult(
        experiment_id="worked-example",
        title="Section 2 running example (Tables 1-4, Figures 1-2)",
        columns=["artifact", "quantity", "measured", "paper"],
    )

    # Table 2: 4-bit signatures (displayed MSB-first like the paper).
    paper_signatures = {
        "a": "0010", "b": "0110", "c": "1010", "d": "1001",
        "A": "1010", "B": "0111", "C": "1010", "D": "1101",
    }
    for names, relation in ((SET_NAMES_R, lhs), (SET_NAMES_S, rhs)):
        for name, row in zip(names, relation):
            result.rows.append(
                {
                    "artifact": "Table 2",
                    "quantity": f"sig({name})",
                    "measured": format(signature_of(row.elements, 4), "04b"),
                    "paper": paper_signatures[name],
                }
            )

    # Section 2.1: signature filter keeps 7 candidates, 4 false positives.
    __, nl_metrics = signature_nested_loop_join(lhs, rhs, signature_bits=4)
    result.rows.append(
        {"artifact": "§2.1", "quantity": "signature candidates",
         "measured": nl_metrics.candidates, "paper": 7}
    )
    result.rows.append(
        {"artifact": "§2.1", "quantity": "false positives",
         "measured": nl_metrics.false_positives, "paper": 4}
    )

    truth = containment_pairs_nested_loop(lhs, rhs)
    result.rows.append(
        {"artifact": "§2.1", "quantity": "join result size",
         "measured": len(truth), "paper": 3}
    )

    # Figure 1: PSJ with the paper's element choices.
    psj = PSJPartitioner(
        8, choose_element=lambda elements: PSJ_PINNED_ELEMENTS[frozenset(elements)]
    )
    psj_assignment = PartitionAssignment.compute(psj, lhs, rhs)
    result.rows.append(
        {"artifact": "Figure 1", "quantity": "PSJ comparisons",
         "measured": psj_assignment.comparisons, "paper": 9}
    )
    result.rows.append(
        {"artifact": "Figure 1", "quantity": "PSJ replicated",
         "measured": psj_assignment.replicated_signatures, "paper": 16}
    )

    # Figure 2: DCJ with Table 4's hash values.
    dcj = DCJPartitioner(paper_table4_family())
    dcj_assignment = PartitionAssignment.compute(dcj, lhs, rhs)
    result.rows.append(
        {"artifact": "Figure 2", "quantity": "DCJ comparisons",
         "measured": dcj_assignment.comparisons, "paper": 8}
    )
    result.rows.append(
        {"artifact": "Figure 2", "quantity": "DCJ replicated",
         "measured": dcj_assignment.replicated_signatures, "paper": 14}
    )
    result.rows.append(
        {"artifact": "Figure 2", "quantity": "DCJ comparison factor",
         "measured": dcj_assignment.comparison_factor, "paper": 0.5}
    )
    result.rows.append(
        {"artifact": "Figure 2", "quantity": "DCJ replication factor",
         "measured": dcj_assignment.replication_factor, "paper": 1.75}
    )

    # Table 3's family evaluated literally (documents the Table 4 typo).
    literal = DCJPartitioner(paper_example_family())
    literal_assignment = PartitionAssignment.compute(literal, lhs, rhs)
    result.rows.append(
        {"artifact": "Table 3 literal", "quantity": "DCJ comparisons",
         "measured": literal_assignment.comparisons, "paper": "n/a"}
    )
    result.rows.append(
        {"artifact": "Table 3 literal", "quantity": "DCJ replicated",
         "measured": literal_assignment.replicated_signatures, "paper": "n/a"}
    )

    for row in result.rows:
        if row["paper"] not in ("", "n/a"):
            result.check(
                f"{row['artifact']} {row['quantity']} == {row['paper']}",
                row["measured"] == row["paper"],
            )
    result.paper_claims = [
        "R ⋈⊆ S = {(a,A), (b,B), (c,C)}",
        "16 signature comparisons leave 7 candidate pairs, 4 false positives",
        "PSJ (Fig 1): 9 comparisons, 16 replicated signatures",
        "DCJ (Fig 2): 8 comparisons, 14 replicated; factors 0.5 and 1.75",
    ]
    result.notes = [
        "Table 4 in the paper lists h3(b)=0, but b={10,13} contains 10, "
        "divisible by 5, so Table 3's h3 definition fires.  The 'Table 3 "
        "literal' rows evaluate the definitions (7 comparisons, 13 "
        "replicated); the Figure 2 rows pin Table 4's printed values and "
        "match the paper's 8/14 exactly.",
        "Correctness holds either way: all joining pairs are co-located.",
    ]
    return result
