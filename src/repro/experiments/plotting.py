"""Terminal (ASCII) line charts for the regenerated figures.

The paper's artifacts are figures; this module renders an
:class:`~repro.experiments.base.ExperimentResult`'s numeric columns as a
character-cell chart so ``setjoins experiment fig6 --plot`` shows the
curves, not just the table.  Pure standard library, no display needed.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ConfigurationError
from .base import ExperimentResult

__all__ = ["ascii_chart", "plot_result"]

_MARKERS = "*+ox#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def ascii_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    x_label: str = "",
) -> str:
    """Render one or more y-series over shared x-values as ASCII art.

    Points are plotted with one marker character per series; the legend
    maps markers to series names.  ``log_x`` spaces the x-axis
    logarithmically (natural for the paper's k sweeps).
    """
    if not x_values:
        raise ConfigurationError("nothing to plot: no x values")
    if not series:
        raise ConfigurationError("nothing to plot: no series")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(x_values)}"
            )
    if log_x and any(x <= 0 for x in x_values):
        raise ConfigurationError("log_x requires positive x values")

    xs = [math.log10(x) for x in x_values] if log_x else list(x_values)
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0
    all_y = [y for values in series.values() for y in values]
    y_lo, y_hi = min(all_y), max(all_y)
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for __ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, values):
            column = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    top_tick = _format_tick(y_hi)
    bottom_tick = _format_tick(y_lo)
    gutter = max(len(top_tick), len(bottom_tick)) + 1
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_tick
        elif row_index == height - 1:
            label = bottom_tick
        else:
            label = ""
        lines.append(label.rjust(gutter) + " |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    x_left = _format_tick(x_values[0])
    x_right = _format_tick(x_values[-1])
    axis = x_left + x_label.center(width - len(x_left) - len(x_right)) + x_right
    lines.append(" " * (gutter + 2) + axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (gutter + 2) + legend)
    return "\n".join(lines)


def plot_result(
    result: ExperimentResult,
    x_column: str | None = None,
    width: int = 64,
    height: int = 16,
) -> str:
    """Chart an experiment result: first column as x, numeric columns as
    series.  Columns with missing/non-numeric cells are skipped."""
    if not result.rows:
        raise ConfigurationError(f"experiment {result.experiment_id} has no rows")
    columns = list(result.columns)
    x_column = x_column or columns[0]
    if x_column not in columns:
        raise ConfigurationError(f"unknown x column {x_column!r}")

    def numeric(column: str) -> list[float] | None:
        values = []
        for row in result.rows:
            value = row.get(column)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return None
            values.append(float(value))
        return values

    x_values = numeric(x_column)
    if x_values is None:
        raise ConfigurationError(f"x column {x_column!r} is not numeric")
    series = {}
    for column in columns:
        if column == x_column:
            continue
        values = numeric(column)
        if values is not None:
            series[column] = values
    if not series:
        raise ConfigurationError("no numeric series to plot")
    log_x = x_values[0] > 0 and x_values[-1] / max(x_values[0], 1e-12) >= 64
    chart = ascii_chart(x_values, series, width, height, log_x=log_x,
                        x_label=x_column)
    return f"== {result.experiment_id}: {result.title} ==\n{chart}"
