"""Figure 6: replication factor vs. number of partitions k (ρ = 1).

Curves for θ_R = θ_S ∈ {10, 100, 1000}: PSJ's replication is bounded by
θ_S but reaches it quickly; DCJ and LSJ depend only on λ, DCJ growing far
slower than LSJ.
"""

from __future__ import annotations

from ..analysis.factors import repl_dcj, repl_lsj, repl_psj, repl_psj_bound
from .base import ExperimentResult, register

__all__ = ["run"]

DEFAULT_K_VALUES = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
DEFAULT_THETAS = (10, 100, 1000)


@register("fig6")
def run(k_values=DEFAULT_K_VALUES, thetas=DEFAULT_THETAS,
        rho: float = 1.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title=f"Replication factor vs k (θ_R = θ_S, ρ = {rho:g})",
        columns=["k", "repl_DCJ", "repl_LSJ"]
        + [f"repl_PSJ(θ={theta})" for theta in thetas],
    )
    reference_theta = thetas[0]
    for k in k_values:
        row = {
            "k": k,
            "repl_DCJ": repl_dcj(k, reference_theta, reference_theta, rho),
            "repl_LSJ": repl_lsj(k, reference_theta, reference_theta, rho),
        }
        for theta in thetas:
            row[f"repl_PSJ(θ={theta})"] = repl_psj(k, theta, rho)
        result.rows.append(row)

    psj_big = repl_psj(128, 1000, rho)
    dcj_128 = repl_dcj(128, 1000, 1000, rho)
    result.check("repl_PSJ(128, θ=1000) ≈ 64.5", abs(psj_big - 64.5) < 0.2)
    result.check("PSJ replicates ≈16.7x more than DCJ there",
                 abs(psj_big / dcj_128 - 16.7) < 0.3)
    result.check("repl_DCJ < repl_LSJ on every sampled point",
                 all(row["repl_DCJ"] <= row["repl_LSJ"] for row in result.rows))
    result.paper_claims = [
        "θ=1000, k=128: PSJ writes 64.5·(|R|+|S|) signatures "
        f"[measured {psj_big:.1f}], 16.7x more than DCJ "
        f"[measured ratio {psj_big / dcj_128:.1f}]",
        "repl_PSJ is bounded by 1/(1+ρ) + ρ/(1+ρ)·θ_S "
        f"[= {repl_psj_bound(1000, rho):.1f} for θ_S=1000]; "
        "repl_DCJ and repl_LSJ are unbounded in k",
        "repl_DCJ reaches PSJ's bound (500.5) only at k ≈ 2^36 "
        f"[our matrix derivation reaches it at k ≈ 2^33: "
        f"repl_DCJ(2^33) = {repl_dcj(2**33, 1000, 1000, rho):.1f}]",
    ]
    result.notes = [
        "DCJ and LSJ replication depends only on λ, hence single curves.",
    ]
    return result
