"""Accuracy of the analytical model (Section 4).

Simulates DCJ and PSJ partitioning over the 5 x 5 grid of element and
cardinality distributions and compares the measured comparison and
replication factors with the Table 7 predictions.  The paper found
predictions "within 15% of the actual values" for a variety of scenarios,
with DCJ more sensitive to distribution changes than PSJ.
"""

from __future__ import annotations

from ..analysis.simulate import simulate_factors
from ..data.distributions import CARDINALITY_DISTRIBUTIONS, ELEMENT_DISTRIBUTIONS
from ..data.workloads import accuracy_workload
from .base import ExperimentResult, register

__all__ = ["run"]


@register("accuracy")
def run(
    size: int = 600,
    theta_r: int = 20,
    theta_s: int = 40,
    k: int = 32,
    seed: int = 5,
    element_kinds=ELEMENT_DISTRIBUTIONS,
    cardinality_kinds=CARDINALITY_DISTRIBUTIONS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="accuracy",
        title=f"Model accuracy over distribution grid (k={k}, "
        f"θ_R={theta_r}, θ_S={theta_s}, |R|=|S|={size})",
        columns=[
            "elements", "cardinalities", "algorithm",
            "comp_measured", "comp_predicted", "comp_err",
            "repl_measured", "repl_predicted", "repl_err",
        ],
    )
    errors = {"DCJ": [], "PSJ": []}
    for element_kind in element_kinds:
        for cardinality_kind in cardinality_kinds:
            workload = accuracy_workload(
                element_kind, cardinality_kind,
                size=size, theta_r=theta_r, theta_s=theta_s, seed=seed,
            )
            lhs, rhs = workload.materialize()
            for algorithm in ("DCJ", "PSJ"):
                observation = simulate_factors(
                    algorithm, lhs, rhs, k, seed=seed,
                    theta_r=theta_r, theta_s=theta_s,
                )
                errors[algorithm].append(
                    max(observation.comparison_error, observation.replication_error)
                )
                result.rows.append(
                    {
                        "elements": element_kind,
                        "cardinalities": cardinality_kind,
                        "algorithm": algorithm,
                        "comp_measured": observation.measured_comparison,
                        "comp_predicted": observation.predicted_comparison,
                        "comp_err": observation.comparison_error,
                        "repl_measured": observation.measured_replication,
                        "repl_predicted": observation.predicted_replication,
                        "repl_err": observation.replication_error,
                    }
                )

    mean_dcj = sum(errors["DCJ"]) / len(errors["DCJ"])
    mean_psj = sum(errors["PSJ"]) / len(errors["PSJ"])
    result.check("mean prediction error within the paper's ~15%",
                 mean_dcj <= 0.15 and mean_psj <= 0.15)
    result.check("DCJ more sensitive to distribution changes than PSJ",
                 mean_dcj >= mean_psj)
    result.paper_claims = [
        "Predictions lie within ~15% of actual values across the grid "
        f"[measured mean worst-of-both error: DCJ {mean_dcj:.1%}, "
        f"PSJ {mean_psj:.1%}]",
        "DCJ tends to be more negatively affected by varying the "
        f"distributions than PSJ [measured: DCJ mean error "
        f"{'>' if mean_dcj > mean_psj else '<='} PSJ mean error]",
    ]
    result.notes = [
        "Uniform elements + constant cardinalities is the model's exact "
        "regime; the other 24 cells probe robustness to assumption "
        "violations.  Heavily skewed element distributions (self-similar, "
        "clustered) break the independent-uniform-bits assumption and can "
        "exceed 15% for DCJ, mirroring the paper's observation.",
    ]
    return result
