"""Experiment harness: one module per reproduced figure/table.

Importing this package registers every experiment; run one with::

    python -m repro.experiments fig8
    python -m repro.experiments --list

or through the CLI (``setjoins experiment fig8``).
"""

from . import (  # noqa: F401  (imported for registration side effects)
    ablations,
    accuracy,
    baselines,
    calibration,
    case_study,
    dist_scaling,
    fig04,
    fig05,
    fig06,
    fig07,
    fig10,
    optimizer_demo,
    parallel_scaling,
    prediction,
    scaling,
    scorecard,
    worked_example,
)
from .plotting import ascii_chart, plot_result
from .base import (
    EXPERIMENTS,
    ExperimentResult,
    experiment_ids,
    format_table,
    get_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "experiment_ids",
    "format_table",
    "get_experiment",
    "ascii_chart",
    "plot_result",
]
