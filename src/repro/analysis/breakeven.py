"""Breakeven analysis between DCJ and PSJ (Figure 10 of the paper).

For given inputs and a calibrated time model, each algorithm's *best
achievable* time is its minimum predicted time over candidate partition
counts (the paper's probing approach over k = 2^1 .. 2^13).  Figure 10
plots, for each relation size |R| = |S|, the set cardinality θ_R at which
those minima are equal: DCJ wins above the curve (larger sets), PSJ below
(smaller sets), with one curve per cardinality ratio λ.

Validation: with the paper's published constants, the λ = 2 frontier at
|R| = |S| = 128000 sits at θ_R = 50.0 — precisely the breakeven point the
paper quotes (θ_R = 50, θ_S = 100, |R| = |S| = 128000), with predicted
times 2012.6 s vs 2013.9 s.  The curve positions are system-specific
("the graphs ... may have different shapes for other systems"); the
orientation and monotone rise of the frontier are not.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .factors import comparison_factor, replication_factor
from .timemodel import TimeModel

__all__ = [
    "BestOperatingPoint",
    "best_operating_point",
    "breakeven_theta",
    "breakeven_frontier",
]

DEFAULT_K_CANDIDATES = tuple(2**l for l in range(1, 14))


@dataclass(frozen=True)
class BestOperatingPoint:
    """An algorithm's predicted optimum for one input configuration."""

    algorithm: str
    k: int
    seconds: float
    comparison_factor: float
    replication_factor: float


def best_operating_point(
    algorithm: str,
    model: TimeModel,
    r_size: int,
    s_size: int,
    theta_r: float,
    theta_s: float,
    k_candidates=DEFAULT_K_CANDIDATES,
) -> BestOperatingPoint:
    """Minimum predicted time over candidate k (the paper's probing approach).

    "Since the formulas in Table 7 are fairly complex, determining the
    optimal k analytically is hard.  Therefore, we use the probing
    approach" — evaluate k = 2^1 .. 2^13 and keep the best.
    """
    if r_size < 1 or s_size < 1:
        raise ConfigurationError("relation sizes must be positive")
    rho = s_size / r_size
    best: BestOperatingPoint | None = None
    for k in k_candidates:
        comp = comparison_factor(algorithm, k, theta_r, theta_s)
        repl = replication_factor(algorithm, k, theta_r, theta_s, rho)
        seconds = model.predict_factors(comp, repl, r_size, s_size, k)
        if best is None or seconds < best.seconds:
            best = BestOperatingPoint(algorithm, k, seconds, comp, repl)
    assert best is not None
    return best


def breakeven_theta(
    model: TimeModel,
    size: int,
    lam: float = 1.0,
    theta_lo: float = 1.0,
    theta_hi: float = 2000.0,
    k_candidates=DEFAULT_K_CANDIDATES,
    iterations: int = 40,
) -> float | None:
    """θ_R at which best(DCJ) = best(PSJ) for |R| = |S| = ``size``.

    PSJ wins for small sets and DCJ for large ones (the paper's central
    conclusion), so the time difference crosses zero once as θ_R grows;
    bisection finds it.  Returns ``theta_lo`` if DCJ already wins at the
    lower bound and ``None`` if PSJ still wins at ``theta_hi``.
    """
    if lam <= 0:
        raise ConfigurationError("λ must be positive")

    def dcj_minus_psj(theta_r: float) -> float:
        theta_s = theta_r * lam
        dcj = best_operating_point(
            "DCJ", model, size, size, theta_r, theta_s, k_candidates
        )
        psj = best_operating_point(
            "PSJ", model, size, size, theta_r, theta_s, k_candidates
        )
        return dcj.seconds - psj.seconds

    lo, hi = theta_lo, theta_hi
    if dcj_minus_psj(lo) < 0:
        return lo
    if dcj_minus_psj(hi) > 0:
        return None
    for __ in range(iterations):
        mid = (lo + hi) / 2.0
        if dcj_minus_psj(mid) > 0:
            lo = mid
        else:
            hi = mid
    return hi


def breakeven_frontier(
    model: TimeModel,
    sizes,
    lam: float = 1.0,
    k_candidates=DEFAULT_K_CANDIDATES,
) -> list[tuple[int, float | None]]:
    """(|R|, breakeven θ_R) pairs — one curve of Figure 10."""
    return [
        (size, breakeven_theta(model, size, lam, k_candidates=k_candidates))
        for size in sizes
    ]
