"""Expected selectivity of a set containment join (paper, Section 3).

Under the model assumptions (uniform elements from a domain of size D,
fixed cardinalities θ_R and θ_S), the probability that a random R-set is
contained in a random S-set is::

    θ_S! (D - θ_R)!         C(θ_S, θ_R)
    ----------------   =   -------------
    (θ_S - θ_R)! D!          C(D, θ_R)

e.g. θ_R=2, θ_S=3, D=10 gives ≈0.066 — about one joining pair for the
paper's 4×4 example relations — and θ_R=10, θ_S=20, D=1000 gives < 1e-18
("a join between R and S with a billion tuples each is expected to return
just one tuple").
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = ["expected_selectivity", "expected_result_size"]


def expected_selectivity(theta_r: int, theta_s: int, domain_size: int) -> float:
    """P(r ⊆ s) for random fixed-cardinality sets from a domain of size D."""
    if theta_r < 0 or theta_s < 0:
        raise ConfigurationError("cardinalities must be non-negative")
    if domain_size < theta_s:
        raise ConfigurationError(
            f"domain size {domain_size} smaller than θ_S={theta_s}"
        )
    if theta_r > theta_s:
        return 0.0
    # C(θ_S, θ_R) / C(D, θ_R), computed in log space for large D.
    log_p = (
        math.lgamma(theta_s + 1)
        - math.lgamma(theta_s - theta_r + 1)
        + math.lgamma(domain_size - theta_r + 1)
        - math.lgamma(domain_size + 1)
    )
    return math.exp(log_p)


def expected_result_size(
    r_size: int, s_size: int, theta_r: int, theta_s: int, domain_size: int
) -> float:
    """Expected number of joining tuples: |R|·|S|·selectivity."""
    return r_size * s_size * expected_selectivity(theta_r, theta_s, domain_size)
