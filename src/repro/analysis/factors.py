"""Analytical comparison and replication factors (Table 7 of the paper).

All formulas take the model parameters of the paper's Section 3:

* ``k``      -- number of partitions (power of two for DCJ/LSJ),
* ``theta_r``, ``theta_s`` -- set cardinalities in R and S (θ_R ≤ θ_S),
* ``lam = theta_s / theta_r`` -- cardinality ratio λ,
* ``rho = |S| / |R|``         -- relation size ratio ρ.

They assume uniformly drawn elements from a large domain, fixed
cardinalities, and nested-loop partition joining — the assumptions the
paper relaxes experimentally (see :mod:`repro.analysis.simulate` for the
accuracy study).

Derivations are summarized in DESIGN.md §1.3; each closed form below is
property-tested against direct simulation of the partitioning algorithms.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "comp_psj",
    "repl_psj",
    "repl_psj_bound",
    "comp_dcj",
    "repl_dcj",
    "comp_lsj",
    "repl_lsj",
    "dcj_replication_matrices",
    "dcj_level_copies",
    "levels_of",
    "ALGORITHMS",
    "comparison_factor",
    "replication_factor",
    "predict_quantities",
]

ALGORITHMS = ("PSJ", "DCJ", "LSJ")


def levels_of(k: float) -> float:
    """log2(k); the DCJ/LSJ *algorithms* need integer levels (power-of-two
    k), but the Table 7 formulas extend continuously, which is how the
    paper plots them against arbitrary k."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    return math.log2(k)


def _matrix_power_real(matrix: np.ndarray, exponent: float) -> np.ndarray:
    """Real (possibly fractional) matrix power via eigendecomposition.

    The DCJ replication matrices have distinct real positive-dominant
    eigenvalues, so the principal power is well defined; tiny imaginary
    residue from the eigensolver is discarded.
    """
    if float(exponent).is_integer():
        return np.linalg.matrix_power(matrix, int(exponent))
    eigenvalues, vectors = np.linalg.eig(matrix)
    powered = np.diag(np.asarray(eigenvalues, dtype=complex) ** exponent)
    return (vectors @ powered @ np.linalg.inv(vectors)).real


def _check_common(k: int, theta_r: float, theta_s: float) -> None:
    # λ = θ_S/θ_R < 1 is allowed: the join is then (almost) empty, but the
    # Table 7 formulas stay well defined and the paper plots them that way
    # (Figures 5 and 7 sweep θ_S below θ_R).
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if theta_r <= 0 or theta_s <= 0:
        raise ConfigurationError("set cardinalities must be positive")


# ----------------------------------------------------------------------
# PSJ
# ----------------------------------------------------------------------

def comp_psj(k: int, theta_s: float) -> float:
    """PSJ comparison factor: ``1 - (1 - 1/k)^θ_S``.

    The probability that the single element routing an R-tuple collides
    with one of the (expected) partitions occupied by an S-tuple.
    Consistent with every value the paper quotes: ≈1 at θ_S=1000, k=128;
    ≈0.95 at θ_S=100, k=32; crossing comp_DCJ near k≈40 for θ=10.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if theta_s <= 0:
        raise ConfigurationError("θ_S must be positive")
    return 1.0 - (1.0 - 1.0 / k) ** theta_s


def repl_psj(k: int, theta_s: float, rho: float = 1.0) -> float:
    """PSJ replication factor.

    R-tuples are stored once; each S-tuple occupies ``k(1-(1-1/k)^θ_S)``
    expected distinct partitions.  Weighted by relation-size shares
    ``1/(1+ρ)`` and ``ρ/(1+ρ)``.
    """
    if rho <= 0:
        raise ConfigurationError("ρ must be positive")
    expected_s_copies = k * (1.0 - (1.0 - 1.0 / k) ** theta_s)
    return 1.0 / (1.0 + rho) + rho / (1.0 + rho) * expected_s_copies


def repl_psj_bound(theta_s: float, rho: float = 1.0) -> float:
    """The k→∞ bound the paper notes: ``1/(1+ρ) + ρ/(1+ρ)·θ_S``."""
    return 1.0 / (1.0 + rho) + rho / (1.0 + rho) * theta_s


# ----------------------------------------------------------------------
# DCJ
# ----------------------------------------------------------------------

def comp_dcj(k: int, theta_r: float, theta_s: float) -> float:
    """DCJ comparison factor: ``(1 - (1/(1+λ))(λ/(1+λ))^λ)^{log2 k}``.

    Depends on the cardinality *ratio* only (the thick single curve of the
    paper's Figure 4).
    """
    _check_common(k, theta_r, theta_s)
    lam = theta_s / theta_r
    per_step = 1.0 - (1.0 / (1.0 + lam)) * (lam / (1.0 + lam)) ** lam
    return per_step ** levels_of(k)


def dcj_replication_matrices(lam: float) -> tuple[np.ndarray, np.ndarray]:
    """Per-level expected-copy transition matrices (M_R, M_S) of Table 7.

    State vector = expected copies residing at (α-nodes, β-nodes) of the
    operator tree; the root is an α-node.  With optimal hash functions the
    no-fire probability on R-sets is ``q = λ/(1+λ)`` and the firing
    probability on S-sets is ``p_S = 1 - q^λ``:

    * an R-tuple at an α-node moves to the α-child w.p. ``1-q`` or the
      β-child w.p. ``q``; at a β-node it is *replicated* to both children
      when the function does not fire (w.p. ``q``), else moves to the
      α-child — giving ``M_R = [[1-q, 1], [q, q]]``;
    * an S-tuple at an α-node is replicated to both children when the
      function fires (w.p. ``p_S``), else moves to the β-child — giving
      ``M_S = [[p_S, p_S], [1, 1-p_S]]``.
    """
    if lam <= 0:
        raise ConfigurationError("λ must be positive")
    q = lam / (1.0 + lam)
    p_s = 1.0 - q**lam
    m_r = np.array([[1.0 - q, 1.0], [q, q]])
    m_s = np.array([[p_s, p_s], [1.0, 1.0 - p_s]])
    return m_r, m_s


def dcj_level_copies(
    levels: int, theta_r: float, theta_s: float
) -> "list[tuple[float, float]]":
    """Expected copies of one R- and one S-tuple after each DCJ level.

    Entry ``i`` is ``(E[copies of an R-tuple], E[copies of an S-tuple])``
    after ``i+1`` applications of the Table 7 transition matrices —
    the per-level growth of the paper's ``y`` that the plan inspector
    annotates the α/β operator tree with.
    """
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels}")
    if theta_r <= 0 or theta_s <= 0:
        raise ConfigurationError("set cardinalities must be positive")
    m_r, m_s = dcj_replication_matrices(theta_s / theta_r)
    ones = np.ones(2)
    state_r = np.array([1.0, 0.0])
    state_s = np.array([1.0, 0.0])
    out = []
    for __ in range(levels):
        state_r = m_r @ state_r
        state_s = m_s @ state_s
        out.append((float(ones @ state_r), float(ones @ state_s)))
    return out


def repl_dcj(k: int, theta_r: float, theta_s: float, rho: float = 1.0) -> float:
    """DCJ replication factor via the Table 7 matrix-power form."""
    _check_common(k, theta_r, theta_s)
    if rho <= 0:
        raise ConfigurationError("ρ must be positive")
    levels = levels_of(k)
    m_r, m_s = dcj_replication_matrices(theta_s / theta_r)
    ones = np.ones(2)
    start = np.array([1.0, 0.0])
    copies_r = ones @ _matrix_power_real(m_r, levels) @ start
    copies_s = ones @ _matrix_power_real(m_s, levels) @ start
    return copies_r / (1.0 + rho) + rho / (1.0 + rho) * copies_s


# ----------------------------------------------------------------------
# LSJ
# ----------------------------------------------------------------------

def comp_lsj(k: int, theta_r: float, theta_s: float) -> float:
    """LSJ comparison factor — identical to DCJ's (paper, Table 7)."""
    return comp_dcj(k, theta_r, theta_s)


def repl_lsj(k: int, theta_r: float, theta_s: float, rho: float = 1.0) -> float:
    """LSJ replication factor.

    Each S-tuple is replicated to every submask of its fired-function
    vector: ``E[2^{#fired}] = (1 + p_S)^l`` copies (the binomial closed
    form of Table 7's sum); R-tuples are stored once.
    """
    _check_common(k, theta_r, theta_s)
    if rho <= 0:
        raise ConfigurationError("ρ must be positive")
    levels = levels_of(k)
    lam = theta_s / theta_r
    q = lam / (1.0 + lam)
    p_s = 1.0 - q**lam
    copies_s = (1.0 + p_s) ** levels
    return 1.0 / (1.0 + rho) + rho / (1.0 + rho) * copies_s


# ----------------------------------------------------------------------
# Uniform dispatch
# ----------------------------------------------------------------------

def comparison_factor(
    algorithm: str, k: int, theta_r: float, theta_s: float
) -> float:
    """Dispatch on algorithm name (``"PSJ"``, ``"DCJ"``, ``"LSJ"``)."""
    if algorithm == "PSJ":
        return comp_psj(k, theta_s)
    if algorithm == "DCJ":
        return comp_dcj(k, theta_r, theta_s)
    if algorithm == "LSJ":
        return comp_lsj(k, theta_r, theta_s)
    raise ConfigurationError(f"unknown algorithm {algorithm!r}")


def replication_factor(
    algorithm: str, k: int, theta_r: float, theta_s: float, rho: float = 1.0
) -> float:
    """Dispatch on algorithm name (``"PSJ"``, ``"DCJ"``, ``"LSJ"``)."""
    if algorithm == "PSJ":
        return repl_psj(k, theta_s, rho)
    if algorithm == "DCJ":
        return repl_dcj(k, theta_r, theta_s, rho)
    if algorithm == "LSJ":
        return repl_lsj(k, theta_r, theta_s, rho)
    raise ConfigurationError(f"unknown algorithm {algorithm!r}")


def predict_quantities(
    algorithm: str,
    k: int,
    theta_r: float,
    theta_s: float,
    r_size: int,
    s_size: int,
) -> dict:
    """The analytical quantities the plan inspector and drift layer use.

    Scales the Table 7 factors to absolute counts for a concrete input:
    ``x = comp·|R|·|S|`` expected signature comparisons and
    ``y = repl·(|R|+|S|)`` expected replicated signatures — the two
    inputs of the Section 5 time formula.
    """
    if r_size < 1 or s_size < 1:
        raise ConfigurationError("relation sizes must be >= 1")
    rho = s_size / r_size
    comp = comparison_factor(algorithm, k, theta_r, theta_s)
    repl = replication_factor(algorithm, k, theta_r, theta_s, rho)
    # float() collapses numpy scalars so the quantities stay JSON-able
    # (drift records are persisted as JSONL).
    return {
        "comparison_factor": float(comp),
        "replication_factor": float(repl),
        "signature_comparisons": float(comp) * r_size * s_size,
        "replicated_signatures": float(repl) * (r_size + s_size),
    }
