"""In-memory partitioning simulation for validating the analytical model.

The paper's Section 4 accuracy study compares the Table 7 formulas against
"simulations" over varied element and cardinality distributions, without
running the full disk operator.  This module does the same: it partitions
in-memory relations with a real partitioner and reports the *measured*
comparison and replication factors alongside the analytical predictions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.dcj import DCJPartitioner
from ..core.lsj import LSJPartitioner
from ..core.partitioning import PartitionAssignment, Partitioner
from ..core.psj import PSJPartitioner
from ..core.sets import Relation
from ..errors import ConfigurationError
from .factors import comparison_factor, replication_factor

__all__ = [
    "FactorObservation",
    "make_partitioner",
    "simulate_factors",
    "monte_carlo_selectivity",
]


@dataclass(frozen=True)
class FactorObservation:
    """Measured vs. predicted factors for one (algorithm, k, workload)."""

    algorithm: str
    k: int
    measured_comparison: float
    measured_replication: float
    predicted_comparison: float
    predicted_replication: float

    @property
    def comparison_error(self) -> float:
        """Relative error of the comparison-factor prediction."""
        if self.measured_comparison == 0:
            return 0.0
        return abs(self.predicted_comparison - self.measured_comparison) / (
            self.measured_comparison
        )

    @property
    def replication_error(self) -> float:
        """Relative error of the replication-factor prediction."""
        if self.measured_replication == 0:
            return 0.0
        return abs(self.predicted_replication - self.measured_replication) / (
            self.measured_replication
        )


def make_partitioner(
    algorithm: str,
    k: int,
    theta_r: float,
    theta_s: float,
    seed: int = 0,
    family_kind: str = "bitstring",
) -> Partitioner:
    """Build a tuned partitioner by algorithm name."""
    if algorithm == "PSJ":
        return PSJPartitioner(k, seed=seed)
    if algorithm == "DCJ":
        return DCJPartitioner.for_cardinalities(k, theta_r, theta_s, family_kind)
    if algorithm == "LSJ":
        return LSJPartitioner.for_cardinalities(k, theta_r, theta_s, family_kind)
    raise ConfigurationError(f"unknown algorithm {algorithm!r}")


def simulate_factors(
    algorithm: str,
    lhs: Relation,
    rhs: Relation,
    k: int,
    seed: int = 0,
    family_kind: str = "bitstring",
    theta_r: float | None = None,
    theta_s: float | None = None,
) -> FactorObservation:
    """Partition real relations and compare measured factors to Table 7.

    ``theta_r`` / ``theta_s`` override the cardinalities used for the
    *predictions* (defaults: the relations' measured averages), which is
    how the accuracy study evaluates the formulas on data that violates
    the fixed-cardinality assumption.
    """
    theta_r = theta_r if theta_r is not None else lhs.average_cardinality()
    theta_s = theta_s if theta_s is not None else rhs.average_cardinality()
    partitioner = make_partitioner(algorithm, k, theta_r, theta_s, seed, family_kind)
    assignment = PartitionAssignment.compute(partitioner, lhs, rhs)
    rho = len(rhs) / len(lhs) if len(lhs) else 1.0
    return FactorObservation(
        algorithm=algorithm,
        k=k,
        measured_comparison=assignment.comparison_factor,
        measured_replication=assignment.replication_factor,
        predicted_comparison=comparison_factor(algorithm, k, theta_r, theta_s),
        predicted_replication=replication_factor(algorithm, k, theta_r, theta_s, rho),
    )


def monte_carlo_selectivity(
    theta_r: int,
    theta_s: int,
    domain_size: int,
    trials: int = 10_000,
    seed: int = 0,
) -> float:
    """Empirical P(r ⊆ s) for random fixed-cardinality sets."""
    if theta_s > domain_size:
        raise ConfigurationError("θ_S cannot exceed the domain size")
    rng = random.Random(seed)
    domain = range(domain_size)
    hits = 0
    for __ in range(trials):
        r = set(rng.sample(domain, theta_r))
        s = set(rng.sample(domain, theta_s))
        if r <= s:
            hits += 1
    return hits / trials
