"""Analytical model: factors, selectivity, time model, breakeven, simulation."""

from .factors import (
    ALGORITHMS,
    comp_dcj,
    comp_lsj,
    comp_psj,
    comparison_factor,
    dcj_replication_matrices,
    levels_of,
    repl_dcj,
    repl_lsj,
    repl_psj,
    repl_psj_bound,
    replication_factor,
)
from .selectivity import expected_result_size, expected_selectivity
from .statistics import RelationStatistics, collect_statistics

__all__ = [
    "ALGORITHMS",
    "comp_dcj",
    "comp_lsj",
    "comp_psj",
    "comparison_factor",
    "dcj_replication_matrices",
    "levels_of",
    "repl_dcj",
    "repl_lsj",
    "repl_psj",
    "repl_psj_bound",
    "replication_factor",
    "expected_result_size",
    "expected_selectivity",
    "RelationStatistics",
    "collect_statistics",
]
