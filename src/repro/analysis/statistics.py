"""Relation statistics for planning and reporting.

The optimizer's step 2 determines "the average set cardinalities θ_R and
θ_S using sampling or available statistics"; this module is the
"available statistics" side: summary statistics over a relation's
set-valued attribute, computable exactly or from a sample, plus the
derived model parameters (λ, selectivity estimate, recommended signature
width) surfaced by the ``setjoins stats`` command.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.sets import Relation
from ..errors import ConfigurationError

__all__ = ["RelationStatistics", "collect_statistics"]


@dataclass(frozen=True)
class RelationStatistics:
    """Summary of one relation's set-valued attribute."""

    name: str
    size: int
    min_cardinality: int
    max_cardinality: int
    mean_cardinality: float
    median_cardinality: float
    empty_sets: int
    distinct_elements: int
    domain_bound: int
    sampled: bool

    def describe(self) -> str:
        lines = [
            f"relation {self.name or '?'}: {self.size} tuples"
            + (" (sampled statistics)" if self.sampled else ""),
            f"  cardinality: min {self.min_cardinality}, "
            f"median {self.median_cardinality:g}, "
            f"mean {self.mean_cardinality:.2f}, max {self.max_cardinality}",
            f"  empty sets: {self.empty_sets}",
            f"  distinct elements seen: {self.distinct_elements} "
            f"(domain bound {self.domain_bound})",
        ]
        return "\n".join(lines)


def collect_statistics(
    relation: Relation,
    sample_size: int | None = None,
    seed: int = 0,
) -> RelationStatistics:
    """Compute statistics exactly, or from a uniform tuple sample."""
    if not len(relation):
        return RelationStatistics(relation.name, 0, 0, 0, 0.0, 0.0, 0, 0, 1,
                                  sampled=False)
    rows = list(relation)
    sampled = False
    if sample_size is not None:
        if sample_size < 1:
            raise ConfigurationError("sample size must be >= 1")
        if sample_size < len(rows):
            rows = random.Random(seed).sample(rows, sample_size)
            sampled = True
    cardinalities = sorted(row.cardinality for row in rows)
    count = len(cardinalities)
    middle = count // 2
    if count % 2:
        median = float(cardinalities[middle])
    else:
        median = (cardinalities[middle - 1] + cardinalities[middle]) / 2.0
    elements: set[int] = set()
    for row in rows:
        elements |= row.elements
    return RelationStatistics(
        name=relation.name,
        size=len(relation),
        min_cardinality=cardinalities[0],
        max_cardinality=cardinalities[-1],
        mean_cardinality=sum(cardinalities) / count,
        median_cardinality=median,
        empty_sets=sum(1 for value in cardinalities if value == 0),
        distinct_elements=len(elements),
        domain_bound=relation.domain_bound(),
        sampled=sampled,
    )
