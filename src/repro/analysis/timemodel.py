"""The calibrated execution-time model of Section 5.

The paper approximates the running time of either partitioning algorithm
as::

    time(x, y, k) = c1·x + c2·y·k^c3

where ``x`` is the total number of signature comparisons (CPU term),
``y`` the total number of signatures written to partitions (I/O term) and
``k^c3`` a fragmentation penalty that grows with the partition count.
The constants are obtained by least-squares fitting over measured runs
("calibration of hardware"); on the paper's 600 MHz testbed the fit was
``c1 = 5.12686e-7, c2 = 8.28197e-7, c3 = 0.691485`` with a 15.4% average
prediction error over 114 points.

:class:`TimeModel` evaluates the formula; :func:`calibrate` reproduces the
fitting step from a list of measured :class:`repro.core.metrics.JoinMetrics`
(or bare sample tuples) using scipy's nonlinear least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy.optimize import least_squares

from ..core.metrics import JoinMetrics
from ..errors import CalibrationError

__all__ = ["TimeModel", "CalibrationSample", "calibrate", "PAPER_TIME_MODEL"]


@dataclass(frozen=True)
class CalibrationSample:
    """One measured run: inputs of the time formula plus observed seconds."""

    comparisons: float  # x
    replicated_signatures: float  # y
    num_partitions: int  # k
    seconds: float

    @classmethod
    def from_metrics(cls, metrics: JoinMetrics) -> "CalibrationSample":
        return cls(
            comparisons=metrics.signature_comparisons,
            replicated_signatures=metrics.replicated_signatures,
            num_partitions=metrics.num_partitions,
            seconds=metrics.total_seconds,
        )


@dataclass(frozen=True)
class TimeModel:
    """``time(x, y, k) = c1·x + c2·y·k^c3`` with fitted constants."""

    c1: float
    c2: float
    c3: float

    def predict(self, comparisons: float, replicated: float, k: int) -> float:
        """Predicted execution time in seconds."""
        return self.c1 * comparisons + self.c2 * replicated * k**self.c3

    def predict_terms(
        self, comparisons: float, replicated: float, k: int
    ) -> tuple[float, float]:
        """The two addends of the formula separately.

        ``(c1·x, c2·y·k^c3)`` — the CPU (comparison) term and the
        I/O-plus-fragmentation (replication) term.  The plan inspector
        shows this split so a user can see *which* term the optimizer
        expected to dominate.
        """
        return (
            self.c1 * comparisons,
            self.c2 * replicated * k**self.c3,
        )

    def relative_error(
        self, comparisons: float, replicated: float, k: int, observed_seconds: float
    ) -> float:
        """Signed relative prediction error ``(observed − predicted) / observed``.

        Positive means the run was slower than predicted.  The paper's
        *average prediction error* is the mean of the absolute values.
        """
        if observed_seconds <= 0:
            raise CalibrationError(
                f"observed time must be positive, got {observed_seconds}"
            )
        predicted = self.predict(comparisons, replicated, k)
        return (observed_seconds - predicted) / observed_seconds

    def predict_factors(
        self,
        comparison_factor: float,
        replication_factor: float,
        r_size: int,
        s_size: int,
        k: int,
    ) -> float:
        """Predict from analytical factors: x = comp·|R|·|S|, y = repl·(|R|+|S|)."""
        return self.predict(
            comparison_factor * r_size * s_size,
            replication_factor * (r_size + s_size),
            k,
        )

    def prediction_errors(self, samples: Sequence[CalibrationSample]) -> list[float]:
        """Relative |predicted − observed| / observed per sample."""
        errors = []
        for sample in samples:
            predicted = self.predict(
                sample.comparisons, sample.replicated_signatures,
                sample.num_partitions,
            )
            errors.append(abs(predicted - sample.seconds) / sample.seconds)
        return errors

    def mean_prediction_error(self, samples: Sequence[CalibrationSample]) -> float:
        """Average relative prediction error (the paper reports 15.4%)."""
        errors = self.prediction_errors(samples)
        return sum(errors) / len(errors) if errors else 0.0


#: The constants the paper fitted for its Java/Berkeley-DB/600 MHz testbed.
PAPER_TIME_MODEL = TimeModel(c1=5.12686e-7, c2=8.28197e-7, c3=0.691485)


def calibrate(
    samples: Iterable[CalibrationSample | JoinMetrics],
    initial: TimeModel = TimeModel(1e-7, 1e-6, 0.7),
) -> TimeModel:
    """Fit (c1, c2, c3) to measured samples by nonlinear least squares.

    Residuals are relative (per-sample error divided by observed time), so
    slow and fast configurations weigh equally — matching the paper's use
    of *average prediction error* as the quality measure.
    """
    normalized = [
        CalibrationSample.from_metrics(s) if isinstance(s, JoinMetrics) else s
        for s in samples
    ]
    if len(normalized) < 3:
        raise CalibrationError(
            f"need at least 3 calibration samples, got {len(normalized)}"
        )
    if any(s.seconds <= 0 for s in normalized):
        raise CalibrationError("calibration samples must have positive times")

    x = np.array([s.comparisons for s in normalized], dtype=float)
    y = np.array([s.replicated_signatures for s in normalized], dtype=float)
    k = np.array([s.num_partitions for s in normalized], dtype=float)
    t = np.array([s.seconds for s in normalized], dtype=float)

    def residuals(params: np.ndarray) -> np.ndarray:
        c1, c2, c3 = params
        return (c1 * x + c2 * y * k**c3 - t) / t

    fit = least_squares(
        residuals,
        x0=[initial.c1, initial.c2, initial.c3],
        bounds=([0.0, 0.0, 0.0], [np.inf, np.inf, 3.0]),
    )
    if not fit.success:
        raise CalibrationError(f"least-squares fit failed: {fit.message}")
    c1, c2, c3 = fit.x
    return TimeModel(float(c1), float(c2), float(c3))
