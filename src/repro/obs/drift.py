"""Model-drift tracking: predicted vs. observed, over time.

The paper's calibrated time model (Section 5) reports a 15.4% average
prediction error *at calibration time*.  On a long-lived installation the
interesting question is how that error evolves — a model calibrated on
one machine, buffer-pool size, or workload mix drifts as any of them
change.  This module keeps the predicted-vs-observed deltas the plan
inspector computes (:mod:`repro.obs.explain`):

* :class:`DriftRecord` — one join's predictions, observations, and
  signed relative errors;
* :func:`record_drift` — publish a record into the metrics registry as
  ``setjoin_drift_*`` gauges (last-join errors) and histograms
  (absolute-error distributions), so drift shows up on ``/metrics``;
* :func:`append_drift_jsonl` / :func:`read_drift_jsonl` — durable
  per-join drift history as JSON Lines;
* :func:`summarize_drift` — aggregate a history into the paper's
  *average prediction error* plus bias (mean signed error);
* :func:`calibration_residuals` — per-sample residuals of a model over
  calibration samples, for the calibration/prediction experiments.

Error convention throughout: signed relative error
``(observed − predicted) / observed``; positive means the model
undershot (the run did more work / took longer than predicted).  The
paper's headline number is the mean of the absolute values.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = [
    "DriftRecord",
    "compute_drift",
    "record_drift",
    "append_drift_jsonl",
    "read_drift_jsonl",
    "summarize_drift",
    "calibration_residuals",
    "environment_fingerprint",
    "rotate_drift_jsonl",
]

#: Keys compared between prediction and observation, in reporting order.
DRIFT_KEYS = ("seconds", "comparisons", "replicated")

#: Buckets for relative-error histograms (fractions, not seconds).
ERROR_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.15, 0.25, 0.5, 1.0, 2.0, 5.0)


@dataclass
class DriftRecord:
    """One join's predicted-vs-observed comparison."""

    timestamp: float
    algorithm: str
    k: int
    r_size: int
    s_size: int
    predicted: dict = field(default_factory=dict)
    observed: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "timestamp": self.timestamp,
            "algorithm": self.algorithm,
            "k": self.k,
            "r_size": self.r_size,
            "s_size": self.s_size,
            "predicted": dict(self.predicted),
            "observed": dict(self.observed),
            "errors": dict(self.errors),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "DriftRecord":
        try:
            return cls(
                timestamp=record["timestamp"],
                algorithm=record["algorithm"],
                k=record["k"],
                r_size=record["r_size"],
                s_size=record["s_size"],
                predicted=dict(record["predicted"]),
                observed=dict(record["observed"]),
                errors=dict(record["errors"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed drift record: {error}"
            ) from error


def _signed_error(predicted, observed):
    if observed == 0:
        return 0.0 if predicted == 0 else None
    return (observed - predicted) / observed


def compute_drift(prediction: dict, metrics, wall=None) -> DriftRecord:
    """Build a :class:`DriftRecord` from a prediction and a finished run.

    ``prediction`` is the dict the plan inspector (or
    :meth:`~repro.core.optimizer.JoinPlan.prediction`) produced — it must
    carry ``seconds``, ``comparisons``/``signature_comparisons`` and
    ``replicated``/``replicated_signatures``.  ``metrics`` is the run's
    :class:`~repro.core.metrics.JoinMetrics`.  ``wall`` is the timestamp
    source (default :func:`time.time`; inject for deterministic tests).
    """
    predicted = {
        "seconds": prediction.get("seconds"),
        "comparisons": prediction.get(
            "comparisons", prediction.get("signature_comparisons")
        ),
        "replicated": prediction.get(
            "replicated", prediction.get("replicated_signatures")
        ),
    }
    missing = [key for key, value in predicted.items() if value is None]
    if missing:
        raise ConfigurationError(
            f"prediction dict is missing {missing} (got keys "
            f"{sorted(prediction)})"
        )
    observed = {
        "seconds": metrics.total_seconds,
        "comparisons": metrics.signature_comparisons,
        "replicated": metrics.replicated_signatures,
    }
    errors = {
        key: _signed_error(predicted[key], observed[key])
        for key in DRIFT_KEYS
    }
    return DriftRecord(
        timestamp=(wall if wall is not None else time.time)(),
        algorithm=metrics.algorithm,
        k=metrics.num_partitions,
        r_size=metrics.r_size,
        s_size=metrics.s_size,
        predicted=predicted,
        observed=observed,
        errors=errors,
    )


def record_drift(record: DriftRecord, registry=None) -> None:
    """Publish a drift record into the metrics registry.

    Exposes, per compared quantity (seconds / comparisons / replicated):

    * ``setjoin_drift_last_<key>_relative_error`` — gauge, signed error
      of the most recent analyzed join;
    * ``setjoin_drift_<key>_abs_error`` — histogram of absolute relative
      errors (the paper's prediction-error distribution);

    plus ``setjoin_drift_records_total``.  Scraping ``/metrics`` after a
    few ANALYZE runs therefore shows both the current drift and its
    history.
    """
    from .registry import get_registry

    reg = registry if registry is not None else get_registry()
    reg.counter(
        "setjoin_drift_records_total",
        "Analyzed joins with predicted-vs-observed drift recorded",
    ).inc()
    for key in DRIFT_KEYS:
        error = record.errors.get(key)
        if error is None:
            continue
        reg.gauge(
            f"setjoin_drift_last_{key}_relative_error",
            f"Signed (observed-predicted)/observed for {key}, last "
            "analyzed join",
        ).set(error)
        reg.histogram(
            f"setjoin_drift_{key}_abs_error",
            f"Absolute relative prediction error for {key}",
            buckets=ERROR_BUCKETS,
        ).observe(abs(error))


def append_drift_jsonl(record: DriftRecord, path: str) -> None:
    """Append one record to a JSONL drift history file."""
    with open(path, "a") as handle:
        handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


def read_drift_jsonl(path: str) -> "list[DriftRecord]":
    """Load a JSONL drift history file."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(DriftRecord.from_dict(json.loads(line)))
    return records


def summarize_drift(records: "list[DriftRecord]") -> dict:
    """Aggregate a drift history.

    Per compared key: ``mean_abs_error`` (the paper's average prediction
    error), ``bias`` (mean signed error; non-zero means systematic
    under-/over-prediction, i.e. the model wants recalibration) and
    ``max_abs_error``.
    """
    out: dict = {"records": len(records)}
    for key in DRIFT_KEYS:
        errors = [
            record.errors[key]
            for record in records
            if record.errors.get(key) is not None
        ]
        if not errors:
            out[key] = None
            continue
        out[key] = {
            "mean_abs_error": sum(abs(e) for e in errors) / len(errors),
            "bias": sum(errors) / len(errors),
            "max_abs_error": max(abs(e) for e in errors),
        }
    return out


def environment_fingerprint() -> dict:
    """Identity of the environment producing drift records.

    Drift history steers recalibration, and recalibration only makes
    sense against measurements from *this* machine and interpreter: a
    history carried over from another host (copied database directory,
    container rebuild, Python upgrade) would teach the model the wrong
    constants.  The fingerprint captures the dimensions that move the
    time model's c1/c2/c3.
    """
    from .rotation import environment_fingerprint as _fingerprint

    return _fingerprint()


def rotate_drift_jsonl(
    path: str,
    max_bytes: int = 4 * 1024 * 1024,
    keep: int = 2000,
    fingerprint: dict | None = None,
) -> dict:
    """Size-cap and environment-stamp a drift history file in place.

    Called by the query service on startup so a long-lived installation
    never grows its history unboundedly.  Two independent actions:

    * **Fingerprint check** — a sidecar ``<path>.meta.json`` records the
      environment that produced the history.  When the stored
      fingerprint differs from the current one, the whole history is
      moved aside to ``<path>.stale`` (it describes another machine's
      timing, worse than no data) and a fresh meta file is written.
    * **Compaction** — when the file exceeds ``max_bytes``, only the
      newest ``keep`` records are kept (rewritten atomically via
      ``os.replace``); the recalibrator only reads recent windows
      anyway.  Malformed lines are dropped during compaction.

    Returns a summary dict: ``{"archived": bool, "rotated": bool,
    "kept": int, "dropped": int}``.  A missing history file is a no-op
    apart from writing the meta sidecar.

    Since PR 8 this is a thin wrapper over the shared
    :func:`repro.obs.rotation.rotate_jsonl` (the same discipline also
    caps the service's per-query trace history); only the line parser —
    a :class:`DriftRecord` round-trip, so compaction sheds records the
    recalibrator could not load — is drift-specific.
    """
    from .rotation import rotate_jsonl

    def _parse(line: str) -> dict:
        return DriftRecord.from_dict(json.loads(line)).to_dict()

    return rotate_jsonl(
        path,
        max_bytes=max_bytes,
        keep=keep,
        fingerprint=(
            fingerprint if fingerprint is not None
            else environment_fingerprint()
        ),
        parse=_parse,
    )


def calibration_residuals(model, samples) -> "list[dict]":
    """Per-sample drift of a time model over calibration samples.

    One dict per :class:`~repro.analysis.timemodel.CalibrationSample`:
    the sample's (x, y, k), the model's predicted seconds, the observed
    seconds, and the signed relative error.  The calibration experiment
    reports these so a fitted model's residual structure (not just its
    mean error) is visible.
    """
    rows = []
    for sample in samples:
        predicted = model.predict(
            sample.comparisons, sample.replicated_signatures,
            sample.num_partitions,
        )
        rows.append({
            "comparisons": sample.comparisons,
            "replicated_signatures": sample.replicated_signatures,
            "k": sample.num_partitions,
            "predicted_seconds": predicted,
            "observed_seconds": sample.seconds,
            "relative_error": _signed_error(predicted, sample.seconds),
        })
    return rows
