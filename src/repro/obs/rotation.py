"""Size-capped JSONL rotation with environment-fingerprint sidecars.

Long-lived services append JSONL histories — drift records, per-query
span traces, postmortems — that would otherwise grow without bound.
:func:`rotate_jsonl` is the shared rotation discipline, generalized
from the drift-history rotation the query service has run on startup
since PR 6 (:func:`repro.obs.drift.rotate_drift_jsonl` now delegates
here):

* **Fingerprint check** — a sidecar ``<path>.meta.json`` records the
  environment that produced the history.  When the stored fingerprint
  differs from the current one the whole file is moved aside to
  ``<path>.stale``: a history carried over from another machine or
  interpreter describes timings and stacks that no longer apply.
* **Compaction** — when the file exceeds ``max_bytes``, only the newest
  ``keep`` records survive, rewritten atomically via ``os.replace``.
  Lines the ``parse`` hook rejects are dropped during compaction.

Clocks are injectable (``wall``) so the sidecar stamp is deterministic
under test.
"""

from __future__ import annotations

import json
import os
import time

from ..errors import ConfigurationError

__all__ = ["rotate_jsonl", "environment_fingerprint"]


def environment_fingerprint() -> dict:
    """Identity of the environment producing a JSONL history.

    Captures the dimensions that invalidate accumulated measurements:
    a history of timings or stack samples from another host, machine
    architecture, interpreter, or core count is worse than no data.
    """
    import platform

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def rotate_jsonl(
    path: str,
    max_bytes: int = 4 * 1024 * 1024,
    keep: int = 2000,
    fingerprint: dict | None = None,
    parse=None,
    wall=None,
) -> dict:
    """Size-cap and environment-stamp one JSONL history file in place.

    ``parse(line) -> dict`` validates one line during compaction and
    returns the canonical record to keep; raising ``ValueError``,
    ``TypeError``, ``KeyError`` or :class:`ConfigurationError` drops the
    line.  The default parser keeps any line that is a JSON object.

    Returns ``{"archived": bool, "rotated": bool, "kept": int,
    "dropped": int}``.  A missing file is a no-op apart from writing the
    meta sidecar.
    """
    fingerprint = (
        fingerprint if fingerprint is not None else environment_fingerprint()
    )
    wall = wall if wall is not None else time.time
    if parse is None:
        def parse(line: str) -> dict:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("JSONL record must be an object")
            return record

    meta_path = path + ".meta.json"
    out = {"archived": False, "rotated": False, "kept": 0, "dropped": 0}

    stored = None
    if os.path.exists(meta_path):
        try:
            with open(meta_path) as handle:
                stored = json.load(handle).get("fingerprint")
        except (OSError, ValueError):
            stored = None  # unreadable meta: treat as foreign history

    if os.path.exists(path) and stored is not None and stored != fingerprint:
        os.replace(path, path + ".stale")
        out["archived"] = True

    if os.path.exists(path) and os.path.getsize(path) > max_bytes:
        records = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(parse(line))
                except (ValueError, TypeError, KeyError, ConfigurationError):
                    continue  # compaction sheds malformed lines
        kept = records[-keep:] if keep > 0 else []
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            for record in kept:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, path)
        out["rotated"] = True
        out["kept"] = len(kept)
        out["dropped"] = len(records) - len(kept)

    with open(meta_path, "w") as handle:
        json.dump(
            {"fingerprint": fingerprint, "stamped": wall()},
            handle, sort_keys=True,
        )
    return out
