"""Per-query resource attribution: ledgers, fingerprints, heavy hitters.

The registry (PR 3) answers "what has the *process* spent"; the flight
recorder (PR 8) answers "what happened to *this* query".  This module
closes the gap between them — "which *queries* are spending the
process's resources" — with three pieces:

* :class:`QueryLedger` — one query's resource bill, computed by
  snapshotting the metrics registry around the service's execution lane
  and keeping the counter movement (:meth:`MetricsRegistry.delta`).
  Because every query executes on the single lane — and because process
  workers and dist shards fold their registry deltas back in *before*
  the lane call returns — the lane-level diff attributes storage and
  engine counters to the query exactly, under every backend and shard
  count.
* :func:`query_fingerprint` — a stable workload key over what a query
  *is* (kind, relations, sizes, densities, resolved algorithm/k,
  signature bits, shard layout) rather than which request happened to
  carry it, so a mixed workload collapses into its recurring shapes.
* :class:`WorkloadLedger` — the per-fingerprint aggregation: totals,
  top-K heavy hitters (by wall, pages, comparisons), and
  :meth:`WorkloadLedger.reconcile`, which checks that the sum of
  per-query ledgers equals the global registry movement since the
  service started.  For the integer resource counters (pages, WAL
  bytes, buffer hits/misses, comparisons, spill bytes) the check is
  *exact* — any unattributed movement means a code path is doing
  storage work outside the lane, which is a bug worth an alert.

Everything here is observation-only plain data: ledgers never feed back
into execution, so results are bit-identical with the ledger on or off
(pinned by tests).
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "RESOURCE_COUNTERS",
    "Fingerprint",
    "QueryLedger",
    "WorkloadLedger",
    "normalize_workload_name",
    "query_fingerprint",
]

#: The ledger's named resource fields and the registry counters they
#: read.  All integer-valued and only ever incremented from within the
#: service's execution-lane window (worker/shard deltas merge before the
#: lane call returns), which is what makes reconciliation exact — float
#: counters (phase seconds) are excluded because telescoping float sums
#: are not associative bit-for-bit.
RESOURCE_COUNTERS = {
    "pages_read": "setjoin_page_reads_total",
    "pages_written": "setjoin_page_writes_total",
    "buffer_hits": "setjoin_buffer_hits_total",
    "buffer_misses": "setjoin_buffer_misses_total",
    "wal_bytes": "setjoin_wal_bytes_total",
    "wal_fsyncs": "setjoin_wal_fsyncs_total",
    "wal_commits": "setjoin_wal_commits_total",
    "spill_bytes": "setjoin_spill_bytes_total",
    "signature_comparisons": "setjoin_signature_comparisons_total",
    "replicated_signatures": "setjoin_replicated_signatures_total",
    "candidates": "setjoin_candidates_total",
    "result_pairs": "setjoin_result_pairs_total",
}

#: ``top(by=...)`` orderings: report key -> ledger expression.
_ORDERINGS = ("wall", "cpu", "pages", "comparisons", "queries")

_DIGITS = re.compile(r"\d+")


def normalize_workload_name(name: str) -> str:
    """Collapse generated relation names into one workload shape.

    Churn traffic creates ``scratch_1``, ``scratch_2``, ... — distinct
    relations, one workload.  Digit runs become ``*`` so they share a
    fingerprint; names without digits pass through unchanged.
    """
    return _DIGITS.sub("*", name)


@dataclass(frozen=True)
class Fingerprint:
    """A stable workload key: short hash plus its readable description.

    ``key`` is what aggregation buckets on; ``label`` is what a human
    reads in the heavy-hitter report; ``detail`` is the normalized
    field dict the key was derived from.
    """

    key: str
    label: str
    detail: dict

    def to_dict(self) -> dict:
        return {"key": self.key, "label": self.label, "detail": dict(self.detail)}


def query_fingerprint(kind: str, detail: dict) -> Fingerprint:
    """Derive the stable key for one normalized query description.

    ``detail`` must be plain JSON-serializable data; the key is a short
    SHA-256 over the canonical (sorted-key) JSON encoding, so the same
    workload shape hashes identically across processes and machines.
    """
    normalized = {"kind": kind}
    for name, value in detail.items():
        if value is None:
            continue
        if isinstance(value, float):
            value = round(value, 3)
        normalized[name] = value
    canonical = json.dumps(normalized, sort_keys=True, separators=(",", ":"))
    key = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    parts = [kind]
    for name in sorted(normalized):
        if name == "kind":
            continue
        parts.append(f"{name}={normalized[name]}")
    return Fingerprint(key=key, label=" ".join(parts), detail=normalized)


class QueryLedger:
    """One query's resource bill: counter movement plus wall/CPU time.

    Built from a :meth:`MetricsRegistry.delta` taken around the lane
    execution of a single query.  Keeps *every* counter that moved (the
    full evidence), and exposes the named integer resources through
    :attr:`resources`.  ``cpu_seconds`` is ``time.process_time`` across
    the lane window — process-wide, so concurrent HTTP handler threads
    can inflate it slightly; wall vs CPU is still the signal that tells
    an I/O-bound query from a compute-bound one.
    """

    __slots__ = ("wall_seconds", "cpu_seconds", "counters")

    def __init__(self, wall_seconds: float = 0.0, cpu_seconds: float = 0.0,
                 counters: "dict | None" = None):
        self.wall_seconds = wall_seconds
        self.cpu_seconds = cpu_seconds
        self.counters: "dict[str, int | float]" = (
            dict(counters) if counters else {}
        )

    @classmethod
    def from_delta(cls, delta: dict, wall_seconds: float,
                   cpu_seconds: float) -> "QueryLedger":
        """Keep the counter movement out of one registry delta.

        Gauges are last-write-wins (not attributable) and histogram
        buckets duplicate the latency histogramming the service already
        does, so only ``kind == "counter"`` entries survive.
        """
        counters = {
            name: entry["value"]
            for name, entry in delta.items()
            if entry.get("kind") == "counter"
        }
        return cls(wall_seconds=wall_seconds, cpu_seconds=cpu_seconds,
                   counters=counters)

    @property
    def resources(self) -> dict:
        """The named integer resource fields (zero-filled)."""
        return {
            field: self.counters.get(metric, 0)
            for field, metric in RESOURCE_COUNTERS.items()
        }

    def get(self, metric: str) -> "int | float":
        return self.counters.get(metric, 0)

    def to_dict(self) -> dict:
        return {
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "resources": self.resources,
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryLedger":
        """Rebuild from :meth:`to_dict` output (capture replay path)."""
        counters = data.get("counters")
        if counters is None:
            # Older/slimmer records may carry only the named resources.
            counters = {
                RESOURCE_COUNTERS[field]: value
                for field, value in data.get("resources", {}).items()
                if field in RESOURCE_COUNTERS
            }
        return cls(
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),
            counters=counters,
        )


class _Group:
    """Per-fingerprint running totals (internal to WorkloadLedger)."""

    __slots__ = (
        "fingerprint", "label", "kind", "queries", "ok", "failed",
        "wall_seconds", "cpu_seconds", "resources", "last_query_id",
    )

    def __init__(self, fingerprint: str, label: str, kind: str):
        self.fingerprint = fingerprint
        self.label = label
        self.kind = kind
        self.queries = 0
        self.ok = 0
        self.failed = 0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.resources = {field: 0 for field in RESOURCE_COUNTERS}
        self.last_query_id: "int | None" = None

    def add(self, ledger: QueryLedger, status: str,
            query_id: "int | None") -> None:
        self.queries += 1
        if status == "ok":
            self.ok += 1
        else:
            self.failed += 1
        self.wall_seconds += ledger.wall_seconds
        self.cpu_seconds += ledger.cpu_seconds
        for field, value in ledger.resources.items():
            self.resources[field] += value
        if query_id is not None:
            self.last_query_id = query_id

    def sort_value(self, by: str) -> float:
        if by == "wall":
            return self.wall_seconds
        if by == "cpu":
            return self.cpu_seconds
        if by == "pages":
            return (self.resources["pages_read"]
                    + self.resources["pages_written"])
        if by == "comparisons":
            return self.resources["signature_comparisons"]
        return self.queries

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "label": self.label,
            "kind": self.kind,
            "queries": self.queries,
            "ok": self.ok,
            "failed": self.failed,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "resources": dict(self.resources),
            "last_query_id": self.last_query_id,
        }


class WorkloadLedger:
    """Aggregate per-query ledgers by fingerprint; reconcile exactly.

    The service owns one instance and calls :meth:`begin` when its lane
    starts (baselining the registry), then :meth:`attribute` once per
    finished query from the lane thread.  Reads (:meth:`report`,
    :meth:`top`) come from HTTP handler threads, hence the lock.

    The same class also aggregates *offline*: feed captured records via
    :meth:`attribute` without calling :meth:`begin`, and :meth:`report`
    simply omits the reconciliation section (there is no live registry
    window to reconcile against).
    """

    def __init__(self, registry=None):
        from .registry import get_registry

        self._registry = registry if registry is not None else get_registry()
        self._lock = threading.Lock()
        self._baseline: "dict | None" = None
        self._totals: "dict[str, int | float]" = {}
        self._wall = 0.0
        self._cpu = 0.0
        self._queries = 0
        self._groups: "dict[str, _Group]" = {}
        self._attributed = self._registry.counter(
            "setjoin_ledger_queries_total",
            "Queries attributed by the workload ledger",
        )

    def begin(self) -> None:
        """Baseline the registry; reconciliation measures from here."""
        with self._lock:
            self._baseline = self._registry.snapshot()

    # ------------------------------------------------------------------

    def attribute(self, fingerprint: Fingerprint, ledger: QueryLedger,
                  *, kind: str, status: str,
                  query_id: "int | None" = None) -> None:
        """Fold one finished query's ledger into the workload totals."""
        with self._lock:
            self._queries += 1
            self._wall += ledger.wall_seconds
            self._cpu += ledger.cpu_seconds
            for name, value in ledger.counters.items():
                self._totals[name] = self._totals.get(name, 0) + value
            group = self._groups.get(fingerprint.key)
            if group is None:
                group = _Group(fingerprint.key, fingerprint.label, kind)
                self._groups[fingerprint.key] = group
            group.add(ledger, status, query_id)
        self._attributed.inc()

    def attribute_record(self, record: dict) -> None:
        """Offline path: fold one captured workload record (a dict with
        ``fingerprint``/``label``/``kind``/``status``/``ledger``)."""
        ledger_data = record.get("ledger")
        if not isinstance(ledger_data, dict):
            raise ConfigurationError(
                f"workload record for query {record.get('query_id')!r} "
                "carries no ledger"
            )
        fingerprint = Fingerprint(
            key=str(record["fingerprint"]),
            label=str(record.get("label", record["fingerprint"])),
            detail={},
        )
        self.attribute(
            fingerprint, QueryLedger.from_dict(ledger_data),
            kind=str(record.get("kind", "?")),
            status=str(record.get("status", "?")),
            query_id=record.get("query_id"),
        )

    # ------------------------------------------------------------------

    @property
    def queries(self) -> int:
        with self._lock:
            return self._queries

    @property
    def fingerprints(self) -> int:
        with self._lock:
            return len(self._groups)

    def totals(self) -> dict:
        """Summed named resources plus wall/CPU across every query."""
        with self._lock:
            out = {
                field: self._totals.get(metric, 0)
                for field, metric in RESOURCE_COUNTERS.items()
            }
            out["wall_seconds"] = self._wall
            out["cpu_seconds"] = self._cpu
            out["queries"] = self._queries
            return out

    def top(self, k: int = 5, by: str = "wall") -> "list[dict]":
        """The K heaviest fingerprints by one ordering."""
        if by not in _ORDERINGS:
            raise ConfigurationError(
                f"top(by=...) must be one of {_ORDERINGS}, got {by!r}"
            )
        if k < 0:
            raise ConfigurationError(f"top k must be >= 0, got {k}")
        with self._lock:
            groups = sorted(
                self._groups.values(),
                key=lambda group: (-group.sort_value(by), group.fingerprint),
            )
            return [group.to_dict() for group in groups[:k]]

    def reconcile(self) -> dict:
        """Sum of per-query ledgers vs the registry since :meth:`begin`.

        For every named resource counter: the global registry movement,
        the attributed sum, and the difference.  ``exact`` is True only
        when every difference is zero.  Call while the lane is idle for
        the exact check — an in-flight query's partial movement shows up
        as transient unattributed counts.
        """
        with self._lock:
            if self._baseline is None:
                raise ConfigurationError(
                    "reconcile() needs begin() first (offline aggregations "
                    "have no registry window to reconcile against)"
                )
            delta = self._registry.delta(self._baseline)
            counters = {}
            exact = True
            for field, metric in RESOURCE_COUNTERS.items():
                entry = delta.get(metric)
                global_value = (
                    entry["value"]
                    if entry is not None and entry.get("kind") == "counter"
                    else 0
                )
                attributed = self._totals.get(metric, 0)
                unattributed = global_value - attributed
                if unattributed:
                    exact = False
                counters[field] = {
                    "global": global_value,
                    "attributed": attributed,
                    "unattributed": unattributed,
                }
            return {"exact": exact, "counters": counters}

    def report(self, top: int = 5) -> dict:
        """The ``GET /debug/workload`` payload: totals, reconciliation
        (live ledgers only), and heavy hitters per ordering."""
        out = {
            "queries": self.queries,
            "fingerprints": self.fingerprints,
            "totals": self.totals(),
            "top": {
                by: self.top(top, by=by)
                for by in ("wall", "pages", "comparisons")
            },
        }
        with self._lock:
            live = self._baseline is not None
        if live:
            out["reconciliation"] = self.reconcile()
        return out
