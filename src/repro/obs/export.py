"""Exporters: JSONL traces, Prometheus text, console summaries.

Three consumers of the observability layer's data:

* :func:`write_trace_jsonl` — one JSON object per span per line, the
  stable machine-readable trace format (schema in
  :data:`TRACE_RECORD_KEYS`; checked by :func:`validate_trace_records`).
* :func:`prometheus_text` — the registry in Prometheus text exposition
  format (version 0.0.4), ready for a scrape endpoint or a textfile
  collector.
* :func:`console_summary` — a human-readable span tree with durations
  and a flamegraph-style bar per span showing its share of the root's
  wall time.
"""

from __future__ import annotations

import json

from .registry import Histogram, MetricsRegistry, get_registry
from .trace import Span, Tracer

__all__ = [
    "TRACE_RECORD_KEYS",
    "span_records",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "validate_trace_records",
    "prometheus_text",
    "console_summary",
]

#: Required keys of one JSONL trace record (the trace schema).
TRACE_RECORD_KEYS = (
    "name", "span_id", "parent_id", "start", "end", "duration", "attrs",
)


def span_records(source) -> list[dict]:
    """Normalize a trace source to flat records.

    Accepts a :class:`~repro.obs.trace.Tracer`, an iterable of
    :class:`~repro.obs.trace.Span` roots, or pre-flattened records.
    """
    if isinstance(source, Tracer) or hasattr(source, "export"):
        return source.export()
    records: list[dict] = []
    for item in source:
        if isinstance(item, Span):
            records.extend(span.to_record() for span in item.walk())
        else:
            records.append(item)
    return records


def write_trace_jsonl(source, path: str) -> int:
    """Write a trace as JSON Lines; returns the number of spans."""
    records = span_records(source)
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_trace_jsonl(path: str) -> list[dict]:
    """Load and validate a JSONL trace file."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    validate_trace_records(records)
    return records


def validate_trace_records(records: list[dict]) -> None:
    """Check trace records against the schema; raises ``ValueError``.

    Every record must carry exactly the :data:`TRACE_RECORD_KEYS`, ids
    must be unique, and every non-null ``parent_id`` must resolve to a
    span in the same trace (a single stitched tree has no dangling
    edges — this is what the CI smoke job asserts for parallel runs).
    """
    seen_ids: set = set()
    for index, record in enumerate(records):
        missing = [key for key in TRACE_RECORD_KEYS if key not in record]
        if missing:
            raise ValueError(f"record {index} is missing keys {missing}")
        if not isinstance(record["name"], str) or not record["name"]:
            raise ValueError(f"record {index} has an empty name")
        if record["span_id"] in seen_ids:
            raise ValueError(f"duplicate span_id {record['span_id']}")
        if not isinstance(record["attrs"], dict):
            raise ValueError(f"record {index} attrs must be a dict")
        if record["end"] is not None and record["end"] < record["start"]:
            raise ValueError(f"record {index} ends before it starts")
        seen_ids.add(record["span_id"])
    for record in records:
        parent = record["parent_id"]
        if parent is not None and parent not in seen_ids:
            raise ValueError(
                f"span {record['span_id']} has dangling parent {parent}"
            )


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry | None = None) -> str:
    """Render a registry in Prometheus text exposition format."""
    reg = registry if registry is not None else get_registry()
    lines: list[str] = []
    for metric in reg.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for upper, cumulative in metric.cumulative():
                lines.append(
                    f'{metric.name}_bucket{{le="{_format_value(float(upper))}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{metric.name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{metric.name}_sum {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count {metric.count}")
        else:
            lines.append(f"{metric.name} {_format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Console summary
# ----------------------------------------------------------------------

_BAR_WIDTH = 24


def _tree_from_records(records: list[dict]) -> list[Span]:
    spans = {
        record["span_id"]: Span(
            record["name"],
            record["span_id"],
            record["parent_id"],
            record["start"],
            record["end"],
            dict(record.get("attrs") or {}),
        )
        for record in records
    }
    roots = []
    for span in spans.values():
        parent = spans.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None:
            parent.children.append(span)
        else:
            roots.append(span)
    for span in spans.values():
        span.children.sort(key=lambda child: child.start)
    return sorted(roots, key=lambda root: root.start)


def _group_shards(span: Span) -> None:
    """Collapse concurrent shard children under one synthetic group span.

    Shards run in parallel, so rendering each one's duration as a share
    of the parent's wall time over-counts — the bars for an 8-shard
    join "sum" to several hundred percent.  When a span has two or more
    shard children (the engine's ``shard`` spans or the distributed
    layer's ``dist.shard`` spans), they are regrouped under one
    ``shards`` line that reports the wall-clock cost (max over shards)
    alongside the aggregate work (sum over shards); the per-shard lines
    nest beneath it, ordered by shard id.
    """
    for child in span.children:
        _group_shards(child)
    shard_children = [
        child for child in span.children
        if child.name in ("shard", "dist.shard")
    ]
    if len(shard_children) >= 2:
        durations = [child.duration for child in shard_children]
        group = Span(
            "shards",
            f"{span.span_id}:shards",
            span.span_id,
            min(child.start for child in shard_children),
            max(child.end if child.end is not None else child.start
                for child in shard_children),
            {
                "count": len(shard_children),
                "max": f"{max(durations) * 1000:.3f}ms",
                "sum": f"{sum(durations) * 1000:.3f}ms",
            },
        )
        group.children = sorted(
            shard_children,
            key=lambda child: (
                child.attrs.get("index", child.attrs.get("shard_id", 0)),
                child.start,
            ),
        )
        span.children = [
            child for child in span.children if child not in shard_children
        ]
        span.children.append(group)
        span.children.sort(key=lambda child: child.start)


def _summary_attrs(span: Span) -> str:
    interesting = {
        key: value
        for key, value in span.attrs.items()
        if isinstance(value, (int, str)) and not isinstance(value, bool)
    }
    if not interesting:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in
                      sorted(interesting.items())[:4])
    return f"  [{inner}]"


def _render_span(span: Span, total: float, prefix: str, is_last: bool,
                 lines: list[str], max_depth: int, depth: int) -> None:
    share = span.duration / total if total > 0 else 0.0
    bar = ("█" * max(1, round(min(share, 1.0) * _BAR_WIDTH))
           if span.duration else "·")
    connector = "" if not prefix and is_last is None else (
        "└─ " if is_last else "├─ "
    )
    lines.append(
        f"{prefix}{connector}{span.name}  {span.duration * 1000:9.3f} ms  "
        f"{share * 100:5.1f}%  {bar}{_summary_attrs(span)}"
    )
    if depth >= max_depth:
        if span.children:
            child_prefix = prefix + ("   " if is_last in (True, None) else "│  ")
            lines.append(
                f"{child_prefix}└─ … {sum(1 for __ in span.walk()) - 1} "
                "nested spans elided"
            )
        return
    children = span.children
    for index, child in enumerate(children):
        child_prefix = prefix + ("   " if is_last in (True, None) else "│  ")
        _render_span(child, total, child_prefix, index == len(children) - 1,
                     lines, max_depth, depth + 1)


def console_summary(source, max_depth: int = 3, registry=None) -> str:
    """Flamegraph-style phase breakdown of a trace, as plain text.

    Each line shows a span's wall time and its share of the root span's
    duration as a bar; nesting mirrors the span tree.  ``max_depth``
    bounds the tree depth rendered (per-page events collapse into one
    "elided" line) so the summary stays terminal-sized.

    Passing a ``registry`` appends a footer with the process's join
    latency percentiles (p50/p95/p99 of the ``setjoin_join_seconds``
    histogram), so a CLI summary shows the session context the single
    trace sits in.
    """
    roots = _tree_from_records(span_records(source))
    if not roots:
        return "(empty trace)"
    lines: list[str] = []
    for root in roots:
        _group_shards(root)
        _render_span(root, root.duration, "", None, lines, max_depth, 0)
    if registry is not None:
        latency = registry.get("setjoin_join_seconds")
        if latency is not None and latency.count:
            quantiles = "  ".join(
                f"p{int(q * 100)}={latency.percentile(q) * 1000:.1f}ms"
                for q in (0.50, 0.95, 0.99)
            )
            lines.append(
                f"session join latency ({latency.count} joins): {quantiles}"
            )
    return "\n".join(lines)
