"""Process-wide metrics registry: counters, gauges, histograms.

The substrate already counts everything the paper's analysis needs —
signature comparisons (``x``), replicated signatures (``y``), physical
page I/O, buffer hits/misses, WAL fsyncs — but each layer keeps its own
ad-hoc counters.  This module unifies them behind one API without
changing the accounting itself: layers keep their local counters (they
stay authoritative for the paper's numbers) and *publish* into the
registry, either incrementally (WAL fsyncs) or at join completion
(:func:`record_join`).

Metric naming follows Prometheus conventions (``setjoin_`` prefix,
``_total`` suffix on counters) so :func:`repro.obs.export.prometheus_text`
can render the registry directly.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from collections import OrderedDict

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "record_join",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets: log-spaced seconds from 1ms to ~2min.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Cumulative-bucket histogram of observed values."""

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count")

    def __init__(self, name: str, help: str = "",
                 buckets: "tuple[float, ...]" = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name} needs sorted, non-empty buckets"
            )
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        self.sum += value
        self.count += 1

    @property
    def observations(self) -> int:
        """Observation count, exposed so ratio math (percentiles, SLO
        burn rates) can guard against dividing by zero on an idle
        series instead of special-casing ``percentile() is None``."""
        return self.count

    def cumulative(self) -> "list[tuple[float, int]]":
        """``(le, cumulative_count)`` per bucket, Prometheus style."""
        total = 0
        out = []
        for upper, count in zip(self.buckets, self.bucket_counts):
            total += count
            out.append((upper, total))
        return out

    def percentile(self, q: float) -> "float | None":
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation within the owning bucket, the same estimate
        ``histogram_quantile`` computes from cumulative buckets.  Values
        beyond the last finite bucket clamp to its upper bound (all that
        is known about them), and ``None`` is returned when the
        histogram has no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"percentile q must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for upper, bucket_count in zip(self.buckets, self.bucket_counts):
            if bucket_count and cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * max(0.0, min(fraction, 1.0))
            cumulative += bucket_count
            lower = upper
        # rank falls in the overflow (+Inf) bucket: clamp to the last
        # finite bound, as Prometheus does.
        return float(self.buckets[-1])

    def _reset(self) -> None:
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Re-requesting a name returns the same object (so layers can cache
    metric handles at init and pay one dict lookup, not one per event);
    requesting an existing name as a different kind is an error.
    """

    def __init__(self):
        self._metrics: "OrderedDict[str, Counter | Gauge | Histogram]" = (
            OrderedDict()
        )

    def _get_or_create(self, factory, name: str, help: str, **kwargs):
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: "tuple[float, ...]" = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def metrics(self) -> "list[Counter | Gauge | Histogram]":
        return list(self._metrics.values())

    def get(self, name: str):
        return self._metrics.get(name)

    def as_dict(self) -> dict:
        """Flat ``{name: value}`` snapshot (histograms expand to
        ``name_sum`` / ``name_count``)."""
        out: dict = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                out[f"{metric.name}_sum"] = metric.sum
                out[f"{metric.name}_count"] = metric.count
            else:
                out[metric.name] = metric.value
        return out

    def snapshot(self) -> dict:
        """Full value snapshot, plain data only (picklable).

        The baseline for :meth:`delta`: a forked worker snapshots the
        registry it inherited before doing any work, so the delta it
        ships home contains only its own contribution.
        """
        out: dict = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "kind": "histogram",
                    "help": metric.help,
                    "buckets": list(metric.buckets),
                    "bucket_counts": list(metric.bucket_counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
            else:
                out[metric.name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "value": metric.value,
                }
        return out

    def delta(self, baseline: dict) -> dict:
        """What changed since ``baseline`` (a :meth:`snapshot`).

        Counters and histograms carry *differences* (additive on merge);
        gauges are last-write-wins and carry their absolute value, and
        appear only when they changed.  The result is plain data, safe
        to pickle across a process boundary.
        """
        out: dict = {}
        for name, entry in self.snapshot().items():
            before = baseline.get(name)
            if entry["kind"] == "counter":
                previous = before["value"] if before is not None else 0
                change = entry["value"] - previous
                if change:
                    out[name] = dict(entry, value=change)
            elif entry["kind"] == "gauge":
                if before is None or before["value"] != entry["value"]:
                    out[name] = dict(entry)
            else:
                previous_counts = (
                    before["bucket_counts"] if before is not None
                    else [0] * len(entry["bucket_counts"])
                )
                counts = [
                    now - then for now, then
                    in zip(entry["bucket_counts"], previous_counts)
                ]
                count = entry["count"] - (
                    before["count"] if before is not None else 0
                )
                if count:
                    out[name] = dict(
                        entry,
                        bucket_counts=counts,
                        count=count,
                        sum=entry["sum"] - (
                            before["sum"] if before is not None else 0.0
                        ),
                    )
        return out

    def merge_delta(self, delta: dict) -> None:
        """Fold a worker's :meth:`delta` into this registry.

        Counters increment, gauges adopt the worker's last value,
        histogram buckets add element-wise.  Metrics the parent has not
        seen yet are created with the worker's help text, so a scrape of
        the parent after a process-parallel join shows the union.
        """
        for name, entry in delta.items():
            if entry["kind"] == "counter":
                self.counter(name, entry.get("help", "")).inc(entry["value"])
            elif entry["kind"] == "gauge":
                self.gauge(name, entry.get("help", "")).set(entry["value"])
            elif entry["kind"] == "histogram":
                buckets = tuple(entry["buckets"])
                histogram = self.histogram(
                    name, entry.get("help", ""), buckets=buckets
                )
                if histogram.buckets != buckets:
                    raise ConfigurationError(
                        f"histogram {name!r} delta has buckets {buckets}, "
                        f"registry has {histogram.buckets}"
                    )
                for index, count in enumerate(entry["bucket_counts"]):
                    histogram.bucket_counts[index] += count
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]
            else:
                raise ConfigurationError(
                    f"unknown metric kind {entry['kind']!r} in delta for "
                    f"{name!r}"
                )

    def reset(self) -> None:
        """Zero every metric, keeping object identity (cached handles in
        long-lived components stay valid)."""
        for metric in self._metrics.values():
            metric._reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def record_join(metrics, registry: MetricsRegistry | None = None) -> None:
    """Publish one :class:`~repro.core.metrics.JoinMetrics` record.

    This is the bridge from the paper's per-join accounting to the
    process-wide registry: x/y, candidates, verification outcomes,
    per-phase wall time and page I/O, and buffer-pool behaviour all
    become Prometheus-ready series.  The JoinMetrics object itself is
    untouched — the paper's numbers stay authoritative.
    """
    reg = registry if registry is not None else _REGISTRY
    reg.counter(
        "setjoin_joins_total", "Completed set-containment joins"
    ).inc()
    reg.counter(
        "setjoin_signature_comparisons_total",
        "Signature comparisons (x in the paper's time model)",
    ).inc(metrics.signature_comparisons)
    reg.counter(
        "setjoin_replicated_signatures_total",
        "Replicated signatures (y in the paper's time model)",
    ).inc(metrics.replicated_signatures)
    reg.counter(
        "setjoin_candidates_total", "Signature-filter candidate pairs"
    ).inc(metrics.candidates)
    reg.counter(
        "setjoin_false_positives_total",
        "Candidates eliminated by exact verification",
    ).inc(metrics.false_positives)
    reg.counter(
        "setjoin_result_pairs_total", "Verified result pairs"
    ).inc(metrics.result_size)
    for phase in ("partitioning", "joining", "verification"):
        record = getattr(metrics, phase)
        reg.counter(
            f"setjoin_phase_{phase}_seconds_total",
            f"Wall-clock seconds spent in the {phase} phase",
        ).inc(record.seconds)
        reg.counter(
            f"setjoin_phase_{phase}_page_reads_total",
            f"Physical page reads during the {phase} phase",
        ).inc(record.page_reads)
        reg.counter(
            f"setjoin_phase_{phase}_page_writes_total",
            f"Physical page writes during the {phase} phase",
        ).inc(record.page_writes)
    reg.counter(
        "setjoin_page_reads_total", "Physical page reads, all phases"
    ).inc(metrics.total_page_reads)
    reg.counter(
        "setjoin_page_writes_total", "Physical page writes, all phases"
    ).inc(metrics.total_page_writes)
    reg.counter(
        "setjoin_buffer_hits_total", "Buffer pool hits during joins"
    ).inc(metrics.buffer_hits)
    reg.counter(
        "setjoin_buffer_misses_total", "Buffer pool misses during joins"
    ).inc(metrics.buffer_misses)
    reg.gauge(
        "setjoin_last_buffer_hit_rate",
        "Buffer pool hit rate of the most recent join",
    ).set(metrics.buffer_hit_rate)
    reg.gauge(
        "setjoin_last_comparison_factor",
        "x / (|R|*|S|) of the most recent join",
    ).set(metrics.comparison_factor)
    reg.gauge(
        "setjoin_last_replication_factor",
        "y / (|R|+|S|) of the most recent join",
    ).set(metrics.replication_factor)
    reg.histogram(
        "setjoin_join_seconds",
        "End-to-end join wall time distribution",
    ).observe(metrics.total_seconds)
