"""Flight recorder: request-scoped context and per-query postmortems.

A query that is admitted, retried across the backend ladder, fanned out
to N shards, and killed by chaos used to leave its evidence scattered
across uncorrelated spans, counters, and log lines.  This module is the
correlation layer:

* :class:`QueryContext` — the request-scoped identity minted alongside
  the ``query_id`` at admission (:mod:`repro.service.queue`).  It rides
  the query through the retry ladder and collects a wall-clock-stamped
  **timeline** (admission, attempts, retries, breaker transitions,
  chaos events) plus snapshots the service attaches as the query
  executes: the chosen plan (EXPLAIN node list), the drift record, the
  metrics-registry delta, and the exported span tree.
* :class:`FlightRecorder` — a bounded in-memory ring of completed
  :class:`QueryContext` snapshots, queryable over HTTP
  (``GET /debug/queries`` / ``GET /debug/query/<id>``).  When a query
  errors, breaches its deadline, or exceeds its latency objective the
  recorder freezes a self-contained **postmortem** — kept in a separate
  bounded map so ring churn cannot evict the interesting failures, and
  optionally dumped as a JSON file for offline analysis (the CI chaos
  job uploads these as artifacts).

The recorder is observation-only: it copies plain data out of the
query path and never feeds anything back, so join results are
bit-identical with the recorder on or off (pinned by tests).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict

from .rotation import environment_fingerprint

__all__ = ["QueryContext", "FlightRecorder"]

#: Statuses a finished query can record; anything but "ok" is a
#: postmortem trigger.
TERMINAL_STATUSES = ("ok", "deadline_exceeded", "error", "internal_error")


class QueryContext:
    """Per-query identity and evidence accumulator.

    Created where the ``query_id`` is minted and mutated only from the
    service's single execution lane, so no locking is needed until the
    finished snapshot is handed to the :class:`FlightRecorder`.
    """

    __slots__ = (
        "query_id", "kind", "created_at", "timeline",
        "plan", "drift", "registry_delta", "spans",
        "ledger", "fingerprint", "_wall",
    )

    def __init__(self, query_id: int, kind: str, wall=None):
        self.query_id = query_id
        self.kind = kind
        self._wall = wall if wall is not None else time.time
        self.created_at = self._wall()
        self.timeline: list[dict] = []
        self.plan: dict | None = None
        self.drift: dict | None = None
        self.registry_delta: dict | None = None
        self.spans: list[dict] = []
        #: the query's resource bill (plain dict from
        #: :meth:`repro.obs.ledger.QueryLedger.to_dict`) and its workload
        #: fingerprint key, attached by the service's ledger settle.
        self.ledger: dict | None = None
        self.fingerprint: str | None = None

    def event(self, kind: str, **fields) -> dict:
        """Append one wall-stamped event to the timeline."""
        record = {"event": kind, "at": self._wall()}
        record.update(fields)
        self.timeline.append(record)
        return record

    def snapshot(self) -> dict:
        """Plain-data copy of everything collected so far."""
        return {
            "query_id": self.query_id,
            "kind": self.kind,
            "created_at": self.created_at,
            "timeline": [dict(event) for event in self.timeline],
            "plan": dict(self.plan) if self.plan is not None else None,
            "drift": dict(self.drift) if self.drift is not None else None,
            "registry_delta": (
                dict(self.registry_delta)
                if self.registry_delta is not None else None
            ),
            "spans": [dict(span) for span in self.spans],
            "ledger": dict(self.ledger) if self.ledger is not None else None,
            "fingerprint": self.fingerprint,
        }


class FlightRecorder:
    """Bounded ring of finished queries plus frozen postmortems.

    ``capacity`` bounds both the ring and the postmortem map; memory use
    is therefore O(capacity × per-query evidence) regardless of uptime.
    ``postmortem_dir`` additionally dumps each postmortem as
    ``postmortem-q<id>.json`` (self-contained: includes the environment
    fingerprint).  The dump directory is budgeted like a rotated JSONL
    history: when the live dumps exceed ``postmortem_max_files`` or
    ``postmortem_max_bytes``, the oldest (lowest query id) are archived
    to ``<name>.stale`` first, and the stale pool itself is bounded by
    deleting its oldest members — so a failure storm cannot grow the
    directory without limit.  Reads come from HTTP handler threads
    while writes come from the execution lane, hence the lock.
    """

    def __init__(self, capacity: int = 128, postmortem_dir: str | None = None,
                 registry=None, wall=None,
                 postmortem_max_files: int = 64,
                 postmortem_max_bytes: int = 16 * 1024 * 1024):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if postmortem_max_files <= 0:
            raise ValueError(
                f"postmortem_max_files must be positive, "
                f"got {postmortem_max_files}"
            )
        self.capacity = capacity
        self.postmortem_dir = postmortem_dir
        self.postmortem_max_files = postmortem_max_files
        self.postmortem_max_bytes = postmortem_max_bytes
        self._wall = wall if wall is not None else time.time
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, dict]" = OrderedDict()
        self._postmortems: "OrderedDict[int, dict]" = OrderedDict()
        from .registry import get_registry

        reg = registry if registry is not None else get_registry()
        self._recorded = reg.counter(
            "setjoin_flight_recorded_total",
            "Queries captured by the flight recorder",
        )
        self._dumped = reg.counter(
            "setjoin_flight_postmortems_total",
            "Postmortems frozen for failed or objective-breaching queries",
        )

    def record(self, context: QueryContext, status: str, seconds: float,
               attempts: int = 0, error: BaseException | None = None,
               objective: float | None = None) -> dict:
        """Capture one finished query; freeze a postmortem if warranted.

        ``objective`` is the query kind's latency objective in seconds
        (from the SLO tracker); exceeding it makes an otherwise-ok query
        a slow-query postmortem.  Returns the recorded entry.
        """
        entry = context.snapshot()
        entry["status"] = status
        entry["seconds"] = seconds
        entry["attempts"] = attempts
        entry["recorded_at"] = self._wall()
        if error is not None:
            entry["error"] = {
                "type": type(error).__name__,
                "detail": str(error),
            }
        else:
            entry["error"] = None

        reason = None
        if status != "ok":
            reason = status
        elif objective is not None and seconds is not None \
                and seconds > objective:
            reason = "latency_objective_exceeded"

        with self._lock:
            self._entries[context.query_id] = entry
            self._entries.move_to_end(context.query_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            self._recorded.inc()
            if reason is not None:
                postmortem = dict(entry)
                postmortem["postmortem_reason"] = reason
                postmortem["objective_seconds"] = objective
                postmortem["environment"] = environment_fingerprint()
                self._postmortems[context.query_id] = postmortem
                while len(self._postmortems) > self.capacity:
                    self._postmortems.popitem(last=False)
                self._dumped.inc()
                if self.postmortem_dir is not None:
                    self._dump(postmortem)
        return entry

    def _dump(self, postmortem: dict) -> None:
        os.makedirs(self.postmortem_dir, exist_ok=True)
        path = os.path.join(
            self.postmortem_dir,
            f"postmortem-q{postmortem['query_id']}.json",
        )
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(postmortem, handle, sort_keys=True, indent=2)
        os.replace(tmp, path)
        self._enforce_dump_budget()

    @staticmethod
    def _dump_query_id(name: str) -> int:
        try:
            return int(name[len("postmortem-q"):].split(".", 1)[0])
        except ValueError:
            return -1

    def _enforce_dump_budget(self) -> None:
        """Archive oldest-first until the dump directory fits its caps.

        Mirrors ``rotate_jsonl`` semantics: evicted-but-recent history
        moves aside (``.stale``) rather than vanishing, and the stale
        pool is itself bounded so the directory has a hard ceiling of
        ``2 × postmortem_max_files`` files.
        """
        live = []
        stale = []
        for name in os.listdir(self.postmortem_dir):
            if not name.startswith("postmortem-q"):
                continue
            if name.endswith(".json"):
                live.append(name)
            elif name.endswith(".json.stale"):
                stale.append(name)
        live.sort(key=self._dump_query_id)
        sizes = {}
        for name in live:
            try:
                sizes[name] = os.path.getsize(
                    os.path.join(self.postmortem_dir, name)
                )
            except OSError:
                sizes[name] = 0
        total = sum(sizes.values())
        while live and (
            len(live) > self.postmortem_max_files
            or total > self.postmortem_max_bytes
        ):
            oldest = live.pop(0)
            path = os.path.join(self.postmortem_dir, oldest)
            total -= sizes[oldest]
            os.replace(path, path + ".stale")
            stale.append(oldest + ".stale")
        stale.sort(key=self._dump_query_id)
        while len(stale) > self.postmortem_max_files:
            try:
                os.remove(os.path.join(self.postmortem_dir, stale.pop(0)))
            except OSError:
                pass

    def entries(self) -> "list[dict]":
        """Newest-first one-line summaries for ``GET /debug/queries``."""
        with self._lock:
            rows = list(self._entries.values())
            frozen = set(self._postmortems)
        rows.reverse()
        return [
            {
                "query_id": entry["query_id"],
                "kind": entry["kind"],
                "status": entry["status"],
                "seconds": entry["seconds"],
                "attempts": entry["attempts"],
                "postmortem": entry["query_id"] in frozen,
            }
            for entry in rows
        ]

    def get(self, query_id: int) -> dict | None:
        """Full evidence for one query; postmortems outlive the ring."""
        with self._lock:
            if query_id in self._postmortems:
                return dict(self._postmortems[query_id])
            entry = self._entries.get(query_id)
            return dict(entry) if entry is not None else None

    def postmortems(self) -> "list[int]":
        """Query ids with frozen postmortems (newest last)."""
        with self._lock:
            return list(self._postmortems)
