"""Closed-loop calibration: drift history → refit → fresher model.

PRs 3–4 built the *observe* half of the loop — the plan inspector
computes per-join predicted-vs-observed drift and :mod:`repro.obs.drift`
persists it — but nothing ever *acted* on the measurements: the
optimizer kept trusting the seed-calibrated Section 5 constants even
when :func:`~repro.obs.drift.summarize_drift` showed them to be
systematically wrong.  This module closes the loop:

* :func:`samples_from_history` — convert accumulated
  :class:`~repro.obs.drift.DriftRecord`\\ s into the
  :class:`~repro.analysis.timemodel.CalibrationSample`\\ s the paper's
  fitting procedure consumes (observed x, y, k and wall seconds);
* :class:`ModelStore` — versioned JSON persistence for refitted
  :class:`~repro.analysis.timemodel.TimeModel`\\ s, each version carrying
  its provenance (record count, window, before/after error, residuals);
  the *active* model is always the freshest version;
* :class:`Recalibrator` — the control policy: refit c1/c2/c3 via
  :func:`~repro.analysis.timemodel.calibrate` whenever the wall-time
  bias of the recent drift window exceeds a threshold, persist the new
  version, and publish ``setjoin_model_*`` gauges so the active
  coefficients and refit count are scrapable;
* :func:`drift_corrections` — per-algorithm multiplicative correction
  factors (recent mean observed/predicted wall-time ratio, shrunk
  toward 1.0 for thin histories) that
  :func:`repro.core.optimizer.choose_plan` applies to candidate
  predictions before comparing DCJ vs PSJ.

The design treats the calibrated constants the way adaptive query
processors treat cost estimates — as hypotheses to be corrected by
observed behaviour — while never touching the join itself: results and
the paper's x/y accounting are bit-identical with adaptation on or off.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..analysis.timemodel import (
    PAPER_TIME_MODEL,
    CalibrationSample,
    TimeModel,
    calibrate,
)
from ..errors import CalibrationError, ConfigurationError
from .drift import DriftRecord, read_drift_jsonl, summarize_drift

__all__ = [
    "ModelVersion",
    "ModelStore",
    "RefitOutcome",
    "RollbackOutcome",
    "Recalibrator",
    "samples_from_history",
    "drift_corrections",
    "publish_model",
]

#: Default |bias| of the wall-time term above which a refit is triggered.
#: The paper's own calibration achieved a 15.4% *absolute* error, so a
#: 20% systematic (signed) bias means the machine no longer resembles
#: the one the constants were fitted on.
DEFAULT_BIAS_THRESHOLD = 0.2

#: Default number of most-recent drift records a refit considers.
DEFAULT_WINDOW = 200

#: Default minimum history size before the recalibrator acts at all.
DEFAULT_MIN_RECORDS = 20

#: Minimum drift records observed *under* a refitted model before the
#: rollback check will judge it — a refit must not be reverted on a
#: couple of noisy joins.
DEFAULT_MIN_ROLLBACK_RECORDS = 20

#: Shrinkage prior strength for per-algorithm corrections: a history of
#: n records pulls the factor n/(n+PRIOR) of the way from 1.0 toward
#: the observed ratio, so a couple of noisy joins barely move the
#: optimizer while a long consistent history dominates.
CORRECTION_PRIOR_STRENGTH = 8.0

#: Per-record observed/predicted wall-time ratios are clamped here so a
#: single pathological record (timer glitch, page-cache cliff) cannot
#: swing an algorithm's correction arbitrarily.
CORRECTION_RATIO_CLAMP = (0.1, 10.0)


def samples_from_history(
    records: Iterable[DriftRecord],
) -> "list[CalibrationSample]":
    """Convert drift records into calibration samples.

    Uses each record's *observed* quantities — the actual signature
    comparisons (x), replicated signatures (y) and wall seconds the run
    produced — exactly what the paper's least-squares fit consumes.
    Records without positive observed seconds (or missing counters) are
    skipped: they cannot constrain the time model.
    """
    samples: list[CalibrationSample] = []
    for record in records:
        seconds = record.observed.get("seconds")
        comparisons = record.observed.get("comparisons")
        replicated = record.observed.get("replicated")
        if not seconds or seconds <= 0:
            continue
        if comparisons is None or replicated is None:
            continue
        samples.append(CalibrationSample(
            comparisons=float(comparisons),
            replicated_signatures=float(replicated),
            num_partitions=max(int(record.k), 1),
            seconds=float(seconds),
        ))
    return samples


@dataclass(frozen=True)
class ModelVersion:
    """One refitted model plus the provenance of its fit."""

    version: int
    model: TimeModel
    fitted_at: float
    records: int  # drift records the fit consumed
    window: int  # configured window the records were drawn from
    mean_abs_error_before: float  # stale model's error on the samples
    mean_abs_error_after: float  # refitted model's error on the samples
    residuals: "tuple[float, ...]" = ()  # per-sample signed relative errors

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "c1": self.model.c1,
            "c2": self.model.c2,
            "c3": self.model.c3,
            "fitted_at": self.fitted_at,
            "records": self.records,
            "window": self.window,
            "mean_abs_error_before": self.mean_abs_error_before,
            "mean_abs_error_after": self.mean_abs_error_after,
            "residuals": list(self.residuals),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ModelVersion":
        try:
            return cls(
                version=int(record["version"]),
                model=TimeModel(
                    c1=float(record["c1"]),
                    c2=float(record["c2"]),
                    c3=float(record["c3"]),
                ),
                fitted_at=float(record["fitted_at"]),
                records=int(record["records"]),
                window=int(record["window"]),
                mean_abs_error_before=float(record["mean_abs_error_before"]),
                mean_abs_error_after=float(record["mean_abs_error_after"]),
                residuals=tuple(record.get("residuals", ())),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed model version record: {error}"
            ) from error


class ModelStore:
    """Versioned persistence for recalibrated time models.

    ``path=None`` keeps versions in memory only (tests, one-shot runs);
    with a path, every :meth:`add_version` rewrites the JSON document
    atomically, and construction loads any existing versions, so a
    long-lived installation resumes from its freshest fit.  The
    ``base_model`` (default: the paper's constants) is what
    :attr:`active` falls back to while no refit has happened yet.
    """

    SCHEMA = 1

    def __init__(
        self,
        path: "str | None" = None,
        base_model: TimeModel = PAPER_TIME_MODEL,
    ):
        self.path = path
        self.base_model = base_model
        self.versions: list[ModelVersion] = []
        if path is not None and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        with open(path) as handle:
            document = json.load(handle)
        if document.get("schema") != self.SCHEMA:
            raise ConfigurationError(
                f"model store {path!r} has schema "
                f"{document.get('schema')!r}, expected {self.SCHEMA}"
            )
        self.versions = [
            ModelVersion.from_dict(record)
            for record in document.get("versions", [])
        ]
        self.versions.sort(key=lambda v: v.version)

    def save(self) -> None:
        """Atomically persist every version (no-op for in-memory stores)."""
        if self.path is None:
            return
        document = {
            "schema": self.SCHEMA,
            "versions": [version.to_dict() for version in self.versions],
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)

    @property
    def active(self) -> TimeModel:
        """The freshest model: the latest version, else the base model."""
        if self.versions:
            return self.versions[-1].model
        return self.base_model

    @property
    def active_version(self) -> int:
        """0 while unrefitted, else the latest version number."""
        return self.versions[-1].version if self.versions else 0

    def add_version(
        self,
        model: TimeModel,
        *,
        records: int,
        window: int,
        mean_abs_error_before: float,
        mean_abs_error_after: float,
        residuals: Sequence[float] = (),
        wall=None,
    ) -> ModelVersion:
        """Append (and persist) a refitted model with its provenance.

        ``wall`` is the timestamp source (default :func:`time.time`;
        inject for deterministic tests).
        """
        version = ModelVersion(
            version=self.active_version + 1,
            model=model,
            fitted_at=(wall if wall is not None else time.time)(),
            records=records,
            window=window,
            mean_abs_error_before=mean_abs_error_before,
            mean_abs_error_after=mean_abs_error_after,
            residuals=tuple(float(r) for r in residuals),
        )
        self.versions.append(version)
        self.save()
        return version

    def rollback(self) -> ModelVersion:
        """Discard (and unpersist) the active version; return it.

        The previous version — or the base model when none remain —
        becomes active.  Rolling back an unrefitted store is a
        :class:`~repro.errors.ConfigurationError`.
        """
        if not self.versions:
            raise ConfigurationError(
                "cannot roll back: no refitted model is active"
            )
        removed = self.versions.pop()
        self.save()
        return removed


def publish_model(
    model: TimeModel, version: int, registry=None
) -> None:
    """Expose the active model on ``/metrics`` as ``setjoin_model_*``.

    Gauges for the three coefficients plus the active version number, so
    a dashboard can both watch the constants move and alert when an
    installation has never refitted (version 0).
    """
    from .registry import get_registry

    reg = registry if registry is not None else get_registry()
    reg.gauge(
        "setjoin_model_c1", "Active time-model CPU coefficient c1"
    ).set(model.c1)
    reg.gauge(
        "setjoin_model_c2", "Active time-model I/O coefficient c2"
    ).set(model.c2)
    reg.gauge(
        "setjoin_model_c3", "Active time-model fragmentation exponent c3"
    ).set(model.c3)
    reg.gauge(
        "setjoin_model_version",
        "Active time-model version (0 = never recalibrated)",
    ).set(version)


@dataclass
class RefitOutcome:
    """What one recalibration attempt decided, and why."""

    refit: bool
    reason: str
    summary: dict = field(default_factory=dict)  # summarize_drift output
    version: "ModelVersion | None" = None

    @property
    def model(self) -> "TimeModel | None":
        return self.version.model if self.version is not None else None


@dataclass
class RollbackOutcome:
    """What one rollback check decided, and why."""

    reverted: bool
    reason: str
    #: mean |relative error| of the (pre-check) active model and of the
    #: paper constants on the post-refit window, when both were computed.
    active_error: "float | None" = None
    base_error: "float | None" = None
    removed: "ModelVersion | None" = None


class Recalibrator:
    """Refit the time model when accumulated drift shows systematic bias.

    The policy mirrors how the paper treats calibration — a least-squares
    fit over measured runs — but runs it *continuously*: every
    :meth:`maybe_recalibrate` call inspects the most recent ``window``
    drift records and refits when the wall-time term's mean signed error
    (bias) exceeds ``bias_threshold`` in magnitude.  A refit is accepted
    only if it actually improves the mean absolute error on the very
    samples that triggered it; the result is versioned into the
    :class:`ModelStore` and published to the metrics registry.
    """

    def __init__(
        self,
        store: "ModelStore | None" = None,
        bias_threshold: float = DEFAULT_BIAS_THRESHOLD,
        window: int = DEFAULT_WINDOW,
        min_records: int = DEFAULT_MIN_RECORDS,
        min_rollback_records: int = DEFAULT_MIN_ROLLBACK_RECORDS,
        registry=None,
    ):
        if bias_threshold <= 0:
            raise ConfigurationError(
                f"bias threshold must be positive, got {bias_threshold}"
            )
        if window < min_records:
            raise ConfigurationError(
                f"window ({window}) must be >= min_records ({min_records})"
            )
        if min_rollback_records < 1:
            raise ConfigurationError(
                "min_rollback_records must be >= 1, got "
                f"{min_rollback_records}"
            )
        self.store = store if store is not None else ModelStore()
        self.bias_threshold = bias_threshold
        self.window = window
        self.min_records = min_records
        self.min_rollback_records = min_rollback_records
        self.registry = registry
        # The current state is observable even before any refit.
        publish_model(
            self.store.active, self.store.active_version, registry=registry
        )

    @property
    def model(self) -> TimeModel:
        """The freshest model (delegates to the store)."""
        return self.store.active

    def maybe_recalibrate(
        self, history: "str | Sequence[DriftRecord]", wall=None
    ) -> RefitOutcome:
        """Inspect a drift history and refit if it warrants it.

        ``history`` is a JSONL path (read via
        :func:`~repro.obs.drift.read_drift_jsonl`) or an already-loaded
        record sequence.  Returns a :class:`RefitOutcome` either way —
        the ``reason`` string always says what happened.
        """
        if isinstance(history, str):
            records = read_drift_jsonl(history)
        else:
            records = list(history)
        recent = records[-self.window:]
        summary = summarize_drift(recent)
        if len(recent) < self.min_records:
            return RefitOutcome(
                False,
                f"history too thin: {len(recent)} records "
                f"< min_records={self.min_records}",
                summary,
            )
        seconds = summary.get("seconds")
        if not seconds:
            return RefitOutcome(
                False, "no wall-time errors in the drift window", summary
            )
        bias = seconds["bias"]
        if abs(bias) <= self.bias_threshold:
            return RefitOutcome(
                False,
                f"wall-time bias {bias:+.1%} within threshold "
                f"±{self.bias_threshold:.0%}",
                summary,
            )
        samples = samples_from_history(recent)
        if len(samples) < 3:  # calibrate() needs >= 3 points
            return RefitOutcome(
                False,
                f"only {len(samples)} usable calibration samples in the "
                "window (need >= 3)",
                summary,
            )
        stale = self.store.active
        error_before = stale.mean_prediction_error(samples)
        try:
            fitted = calibrate(samples, initial=stale)
        except CalibrationError as error:
            return RefitOutcome(
                False, f"refit failed: {error}", summary
            )
        error_after = fitted.mean_prediction_error(samples)
        if error_after >= error_before:
            return RefitOutcome(
                False,
                f"refit did not improve: {error_after:.1%} >= "
                f"{error_before:.1%} on the triggering window",
                summary,
            )
        residuals = [
            fitted.relative_error(
                s.comparisons, s.replicated_signatures, s.num_partitions,
                s.seconds,
            )
            for s in samples
        ]
        version = self.store.add_version(
            fitted,
            records=len(samples),
            window=self.window,
            mean_abs_error_before=error_before,
            mean_abs_error_after=error_after,
            residuals=residuals,
            wall=wall,
        )
        self._publish_refit(version)
        return RefitOutcome(
            True,
            f"wall-time bias {bias:+.1%} exceeded ±"
            f"{self.bias_threshold:.0%}: refit over {len(samples)} samples "
            f"cut mean |error| {error_before:.1%} → {error_after:.1%}",
            summary,
            version,
        )

    def maybe_rollback(
        self, history: "str | Sequence[DriftRecord]", wall=None
    ) -> RollbackOutcome:
        """Revert the active refit if it performs worse than the paper
        constants on the drift observed *since* it was fitted.

        A refit is accepted on the window that triggered it — the past.
        This is the forward check: once ``min_rollback_records`` drift
        records have accumulated under the refitted model, compare its
        mean |relative error| on them against the base (paper) model's;
        if the refit regresses, pop it from the store, bump
        ``setjoin_model_rollback_total`` and raise the
        ``setjoin_model_rollback_alert`` gauge.  The alert clears (0)
        whenever a check finds the active refit healthy.  ``wall`` is
        accepted for symmetry with :meth:`maybe_recalibrate` and unused.
        """
        del wall
        if not self.store.versions:
            return RollbackOutcome(
                False, "no refitted model active: nothing to roll back"
            )
        if isinstance(history, str):
            records = read_drift_jsonl(history)
        else:
            records = list(history)
        active = self.store.versions[-1]
        since = [
            record for record in records
            if record.timestamp > active.fitted_at
        ]
        if len(since) < self.min_rollback_records:
            return RollbackOutcome(
                False,
                f"only {len(since)} drift records since refit v"
                f"{active.version} (need >= {self.min_rollback_records})",
            )
        samples = samples_from_history(since)
        if len(samples) < 3:
            return RollbackOutcome(
                False,
                f"only {len(samples)} usable samples since refit v"
                f"{active.version} (need >= 3)",
            )
        active_error = active.model.mean_prediction_error(samples)
        base_error = self.store.base_model.mean_prediction_error(samples)
        if active_error <= base_error:
            self._alert_gauge().set(0)
            return RollbackOutcome(
                False,
                f"refit v{active.version} holding up: {active_error:.1%} "
                f"<= paper constants' {base_error:.1%} over "
                f"{len(samples)} post-refit samples",
                active_error=active_error,
                base_error=base_error,
            )
        removed = self.store.rollback()
        self._publish_rollback(removed)
        return RollbackOutcome(
            True,
            f"refit v{removed.version} regressed: {active_error:.1%} > "
            f"paper constants' {base_error:.1%} over {len(samples)} "
            "post-refit samples; reverted to "
            f"v{self.store.active_version}",
            active_error=active_error,
            base_error=base_error,
            removed=removed,
        )

    def _alert_gauge(self):
        from .registry import get_registry

        reg = self.registry if self.registry is not None else get_registry()
        return reg.gauge(
            "setjoin_model_rollback_alert",
            "1 while the last rollback check reverted a refitted model",
        )

    def _publish_rollback(self, removed: ModelVersion) -> None:
        from .registry import get_registry

        reg = self.registry if self.registry is not None else get_registry()
        reg.counter(
            "setjoin_model_rollback_total",
            "Refitted time models reverted for regressing vs the paper "
            "constants",
        ).inc()
        self._alert_gauge().set(1)
        publish_model(
            self.store.active, self.store.active_version,
            registry=self.registry,
        )

    def _publish_refit(self, version: ModelVersion) -> None:
        from .registry import get_registry

        reg = self.registry if self.registry is not None else get_registry()
        reg.counter(
            "setjoin_model_refits_total",
            "Time-model recalibrations accepted",
        ).inc()
        reg.gauge(
            "setjoin_model_last_refit_error_before",
            "Stale model's mean |relative error| on the refit window",
        ).set(version.mean_abs_error_before)
        reg.gauge(
            "setjoin_model_last_refit_error_after",
            "Refitted model's mean |relative error| on the refit window",
        ).set(version.mean_abs_error_after)
        publish_model(version.model, version.version, registry=self.registry)


def drift_corrections(
    records: "Sequence[DriftRecord] | None",
    window: int = 50,
    prior_strength: float = CORRECTION_PRIOR_STRENGTH,
) -> "dict[str, float]":
    """Per-algorithm multiplicative wall-time correction factors.

    For each algorithm with drift history, the factor is the recent mean
    of the per-join observed/predicted wall-time ratio — equivalently
    ``1/(1 − e)`` for the signed relative error ``e`` the drift layer
    stores — shrunk toward 1.0 by a prior of strength
    ``prior_strength`` pseudo-records::

        correction = (n·mean_ratio + prior) / (n + prior)

    A factor above 1.0 means the model systematically undershoots that
    algorithm (its runs take longer than predicted), so the optimizer
    should inflate its candidate predictions; below 1.0, deflate.
    Algorithms without history are simply absent (treated as 1.0 by the
    optimizer).  Per-record ratios are clamped to
    :data:`CORRECTION_RATIO_CLAMP` so one outlier cannot dominate.
    """
    if not records:
        return {}
    if prior_strength < 0:
        raise ConfigurationError(
            f"prior strength must be >= 0, got {prior_strength}"
        )
    lo, hi = CORRECTION_RATIO_CLAMP
    per_algorithm: dict[str, list[float]] = {}
    for record in records:
        error = record.errors.get("seconds")
        if error is None or error >= 1.0:
            continue  # e == 1 would mean predicted 0; unusable either way
        ratio = min(max(1.0 / (1.0 - error), lo), hi)
        per_algorithm.setdefault(record.algorithm, []).append(ratio)
    corrections: dict[str, float] = {}
    for algorithm, ratios in per_algorithm.items():
        recent = ratios[-window:]
        n = len(recent)
        mean_ratio = sum(recent) / n
        corrections[algorithm] = (
            (n * mean_ratio + prior_strength) / (n + prior_strength)
        )
    return corrections
