"""Live metrics endpoint: a stdlib HTTP server exposing the registry.

A tiny, dependency-free scrape target so a long-lived join session (the
CLI's ``repro serve``, or ``repro db --serve``) can be watched with a
standard Prometheus/Grafana stack:

* ``GET /metrics`` — the process registry in Prometheus text exposition
  format (:func:`repro.obs.export.prometheus_text`);
* ``GET /healthz`` — liveness probe, a small JSON document;
* anything else — 404.

:class:`MetricsServer` runs on a daemon thread (``start()``) so it never
blocks or outlives the process; ``port=0`` binds an ephemeral port
(tests use this).  The handler reads the registry snapshot at request
time — there is no caching — so a scrape immediately after a join sees
its metrics.

The bind interface defaults to loopback; pass ``host="0.0.0.0"`` (the
CLI's ``--bind``) to expose the endpoint beyond the machine, and a
``token`` to require ``Authorization: Bearer <token>`` on ``/metrics``
(``/healthz`` stays open so liveness probes need no credentials).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ConfigurationError

__all__ = ["MetricsServer", "serve_metrics"]


class _Server(ThreadingHTTPServer):
    """The listening socket, tuned for rapid stop/start cycles.

    ``SO_REUSEADDR`` (via ``allow_reuse_address``) lets a restarted
    server rebind a port whose previous socket is still in TIME_WAIT —
    without it, test suites and service restarts that reuse a fixed port
    hit ``EADDRINUSE`` for up to a minute.
    """

    allow_reuse_address = True
    daemon_threads = True


class _Handler(BaseHTTPRequestHandler):
    server_version = "setjoin-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] == "/metrics":
            if not self._authorized():
                body = json.dumps({"error": "unauthorized"}).encode()
                self.send_response(401)
                self.send_header("Content-Type", "application/json")
                self.send_header("WWW-Authenticate", "Bearer")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            from .export import prometheus_text

            body = prometheus_text(self.server.registry).encode()
            self._reply(200, "text/plain; version=0.0.4; charset=utf-8", body)
        elif self.path.split("?", 1)[0] == "/healthz":
            body = json.dumps(
                {"status": "ok", "service": "setjoin"}
            ).encode()
            self._reply(200, "application/json", body)
        else:
            body = json.dumps(
                {"error": "not found", "endpoints": ["/metrics", "/healthz"]}
            ).encode()
            self._reply(404, "application/json", body)

    def _authorized(self) -> bool:
        token = getattr(self.server, "token", None)
        if token is None:
            return True
        import hmac

        header = self.headers.get("Authorization", "")
        expected = f"Bearer {token}"
        # Constant-time comparison; a scrape credential is still a
        # credential.
        return hmac.compare_digest(header, expected)

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        # Quiet by default; the CLI decides what to print.
        pass


class MetricsServer:
    """A `/metrics` + `/healthz` HTTP endpoint over a metrics registry.

    ``registry=None`` serves the process-wide default registry.  Use as
    a context manager, or ``start()``/``stop()`` explicitly::

        with MetricsServer(port=0) as server:
            print(server.url)  # e.g. http://127.0.0.1:49321
            ...                # run joins; scrape any time

    ``host`` is the bind interface (loopback by default; ``"0.0.0.0"``
    for all interfaces).  ``token``, when set, gates ``/metrics`` behind
    ``Authorization: Bearer <token>``; ``/healthz`` stays open.

    Lifecycle is restart-safe: ``stop()`` is idempotent (concurrent or
    repeated calls are no-ops), ``start()`` after ``stop()`` rebinds the
    same port immediately (the listening socket sets ``SO_REUSEADDR``),
    and ``start()`` while running raises rather than leaking a second
    socket.
    """

    #: the request handler; subclasses (the query service's front end)
    #: override this to add routes while inheriting the lifecycle.
    handler_class = _Handler

    def __init__(self, host: str = "127.0.0.1", port: int = 9464,
                 registry=None, token: str | None = None):
        if port < 0 or port > 65535:
            raise ConfigurationError(f"invalid port {port}")
        if token is not None and (not token or "\n" in token or "\r" in token):
            raise ConfigurationError(
                "token must be a non-empty single-line string"
            )
        self.host = host
        self.requested_port = port
        self.token = token
        self._registry = registry
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        # Serializes start()/stop(): without it two racing stop() calls
        # both see _httpd non-None and the loser shuts down a dead server
        # (AttributeError on None after the winner cleared the fields).
        self._lifecycle = threading.Lock()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread; returns self.

        Safe to call again after :meth:`stop` (restart); raises while
        already running.
        """
        from .registry import get_registry

        with self._lifecycle:
            if self._httpd is not None:
                raise ConfigurationError("metrics server is already running")
            self._httpd = _Server(
                (self.host, self.requested_port), self.handler_class
            )
            self._httpd.registry = (
                self._registry if self._registry is not None
                else get_registry()
            )
            self._httpd.token = self.token
            self._configure_server(self._httpd)
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="setjoin-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def _configure_server(self, httpd) -> None:
        """Subclass hook: attach extra state to the bound server object."""

    def stop(self) -> None:
        """Shut down and release the port; idempotent and thread-safe."""
        with self._lifecycle:
            httpd, thread = self._httpd, self._thread
            self._httpd = None
            self._thread = None
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_metrics(host: str = "127.0.0.1", port: int = 9464,
                  registry=None, token: str | None = None) -> MetricsServer:
    """Start a daemon-thread metrics server and return it."""
    return MetricsServer(host, port, registry, token=token).start()
