"""Span tracing with explicit clocks and cross-process stitching.

A :class:`Span` is one named, timed unit of work with free-form
attributes; spans nest, forming a tree per traced operation.  A
:class:`Tracer` owns the span tree and the clocks:

* ``clock`` (default :func:`time.perf_counter`) measures durations;
* ``wall`` (default :func:`time.time`) anchors the trace on the epoch
  so spans from different processes land on one comparable timeline.

Both clocks are injected, so tests drive deterministic traces and the
whole layer is simulation-friendly.

Cross-process propagation: a worker builds its own tracer, runs its
shard, and ships ``tracer.export()`` — a list of plain dicts — back in
its (picklable) result.  The parent calls :meth:`Tracer.adopt` to
re-key the records and graft them under its current span, so a k-way
parallel join yields one coherent tree with true per-shard wall times.

The *ambient* tracer (:func:`current_tracer` / :func:`use_tracer`)
is how deep layers — the buffer pool, the WAL — attach spans without
threading a tracer argument through every call site.  It defaults to
:data:`NULL_TRACER`, whose spans are shared no-op objects, so
un-traced runs pay almost nothing.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
]


class Span:
    """One timed, attributed unit of work in a span tree."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end",
                 "attrs", "children")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        end: float | None = None,
        attrs: dict | None = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attrs: dict = attrs if attrs is not None else {}
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_record(self) -> dict:
        """Flat, JSON-able representation (one JSONL line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"duration={self.duration:.6f})")


#: Process-wide span id allocator.  Per-tracer counters would restart at
#: 1 for every query, so a JSONL file accumulating one tree per query
#: (the service's trace log) would violate its own unique-id schema;
#: drawing every id from one counter keeps any in-process mix of trees
#: collision-free.  Ids from *other* processes are re-keyed on adoption.
_span_ids = itertools.count(1)


class Tracer:
    """Builds span trees; all time comes from the injected clocks."""

    enabled = True

    def __init__(self, clock=None, wall=None, tags: dict | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        wall_clock = wall if wall is not None else time.time
        self._clock0 = self._clock()
        self._wall0 = wall_clock()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        #: Request-scoped correlation attributes (e.g. ``query_id``)
        #: stamped onto every root span this tracer opens or adopts, so
        #: spans stay attributable after trees from many queries are
        #: mixed in one JSONL file.
        self.tags: dict = dict(tags) if tags else {}

    # ------------------------------------------------------------------

    def _now(self) -> float:
        """Epoch-anchored timestamp: wall origin + monotonic elapsed."""
        return self._wall0 + (self._clock() - self._clock0)

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, **attrs) -> Span:
        """Open a span under the current one (or as a new root)."""
        parent = self.current
        span = Span(
            name,
            next(_span_ids),
            parent.span_id if parent is not None else None,
            self._now(),
            attrs=dict(attrs) if attrs else {},
        )
        if parent is not None:
            parent.children.append(span)
        else:
            if self.tags:
                # Tags under explicit attrs: a span naming its own
                # query_id wins over the tracer-wide default.
                span.attrs = {**self.tags, **span.attrs}
            self.roots.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> Span:
        """Close ``span`` (and any forgotten spans opened inside it)."""
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = self._now()
            if top is span:
                break
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        """``with tracer.span("phase", k=8) as s: ...`` — the main API."""
        span = self.start(name, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    # ------------------------------------------------------------------
    # Serialization / stitching
    # ------------------------------------------------------------------

    def export(self) -> list[dict]:
        """Every span of every root tree as flat records, depth-first.

        Open spans are exported with ``end = None``; the records pickle
        and JSON-serialize cleanly for cross-process shipping.
        """
        records = []
        for root in self.roots:
            for span in root.walk():
                records.append(span.to_record())
        return records

    def child(self) -> "Tracer":
        """A fresh tracer sharing this tracer's clocks.

        In-process workers (the serial and thread parallel backends) use
        this so their span trees stay on the parent's timeline — and stay
        deterministic when the parent's clocks are injected fakes.
        """
        return Tracer(clock=self._clock, wall=lambda: self._now(),
                      tags=self.tags)

    def adopt(self, records: list[dict], parent: Span | None = None) -> list[Span]:
        """Graft foreign span records into this tracer's tree.

        Records (from another tracer's :meth:`export`, typically another
        process) are re-keyed with fresh span ids; their internal
        parent/child links are preserved regardless of record order, and
        records whose parent is not in the batch attach under ``parent``
        (default: the current span, or as new roots).  Returns the
        adopted top-level spans.

        Malformed records — missing keys, non-string names, duplicate
        span ids within the batch — raise ``ValueError`` before anything
        is grafted, so a bad batch never leaves a half-adopted tree.
        """
        if parent is None:
            parent = self.current
        by_old_id: dict[int, Span] = {}
        adopted: list[tuple[dict, Span]] = []
        for index, record in enumerate(records):
            try:
                name = record["name"]
                old_id = record["span_id"]
                start = record["start"]
                end = record["end"]
            except (KeyError, TypeError) as error:
                raise ValueError(
                    f"cannot adopt record {index}: missing key {error}"
                ) from None
            if not isinstance(name, str) or not name:
                raise ValueError(f"cannot adopt record {index}: empty name")
            if old_id in by_old_id:
                raise ValueError(
                    f"cannot adopt records: duplicate span_id {old_id}"
                )
            span = Span(
                name,
                next(_span_ids),
                None,
                start,
                end,
                dict(record.get("attrs") or {}),
            )
            by_old_id[old_id] = span
            adopted.append((record, span))
        # Second pass: link after every span exists, so a child record
        # appearing before its parent (out-of-order export) still nests.
        tops: list[Span] = []
        for record, span in adopted:
            old_parent = record.get("parent_id")
            adoptive = by_old_id.get(old_parent) if old_parent is not None else None
            if adoptive is not None:
                span.parent_id = adoptive.span_id
                adoptive.children.append(span)
            else:
                tops.append(span)
        for span in tops:
            if parent is not None:
                span.parent_id = parent.span_id
                parent.children.append(span)
            else:
                if self.tags:
                    span.attrs = {**self.tags, **span.attrs}
                self.roots.append(span)
        return tops


class _NullSpan:
    """Shared do-nothing span; every no-op trace call returns it."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    attrs: dict = {}
    children: list = []

    def set(self, **attrs) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every operation is a cheap no-op."""

    enabled = False
    roots: list = []

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def start(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, span) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current(self) -> None:
        return None

    def export(self) -> list[dict]:
        return []

    def adopt(self, records, parent=None) -> list:
        return []


NULL_TRACER = NullTracer()

_ambient: "Tracer | NullTracer" = NULL_TRACER


def current_tracer() -> "Tracer | NullTracer":
    """The ambient tracer deep layers report to (default: no-op)."""
    return _ambient


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer"):
    """Install ``tracer`` as the ambient tracer for the dynamic extent."""
    global _ambient
    previous = _ambient
    _ambient = tracer
    try:
        yield tracer
    finally:
        _ambient = previous
