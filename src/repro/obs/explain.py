"""EXPLAIN/ANALYZE plan inspector.

The paper's analysis predicts a join before it runs — comparison factor,
replication factor, the calibrated time model — and the tracer measures
it afterwards.  This module puts both on one tree so a user can ask
"what did the optimizer expect, and how far off was it?":

* **EXPLAIN** (:func:`explain_join`) renders the plan the optimizer (or
  a forced configuration) would execute, annotated with the analytical
  predictions: x/y from the Table 7 factors, page I/O for the partition
  store, and the Section 5 time formula split into its CPU and
  replication terms.  For DCJ the actual α/β operator tree is shown,
  each node with its partitioning function and replication probability,
  each level with the expected per-tuple copy counts from the Table 7
  transition matrices.  Nothing is executed.

* **ANALYZE** (:func:`analyze_join`) executes the join — through the
  exact same code path a plain join takes, so results and the paper's
  x/y accounting are bit-identical — and stitches the observed values
  from the span tree and the join metrics next to the predictions, with
  a per-node relative-error column.  Observed durations come from the
  tracer's (injectable) clocks, so ANALYZE output is deterministic under
  fake clocks and snapshot-testable.

Beyond the paper's three disk-based algorithms, the inspector renders
structural plans for the two extra operators the testbed carries: SHJ's
submask-probing **lattice levels** and the hybrid join's cardinality
**switchover** each get their own plan nodes.

The per-join predicted-vs-observed deltas feed the drift layer
(:mod:`repro.obs.drift`), closing the loop between ``repro.analysis``
and ``repro.obs``.  The loop's *act* half feeds back in here too:
passing ``drift_history=`` (or precomputed correction factors) adds a
**corrected** column next to the raw predictions — the model prediction
times the algorithm's recent observed wall-time drift, exactly the
number the drift-aware optimizer compares (:mod:`repro.obs.adaptive`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..analysis.timemodel import PAPER_TIME_MODEL, TimeModel
from ..errors import ConfigurationError

__all__ = [
    "PlanNode",
    "ExplainReport",
    "AnalyzeResult",
    "build_plan_from_statistics",
    "attach_observed",
    "explain_join",
    "analyze_join",
]

#: Fixed rendering order of metric keys (everything else sorts after).
_METRIC_ORDER = (
    "seconds",
    "drift_correction",
    "cpu_seconds",
    "replication_seconds",
    "comparisons",
    "comparison_factor",
    "replicated",
    "replication_factor",
    "partition_pages",
    "candidates",
    "false_positives",
    "results",
    "page_reads",
    "page_writes",
    "buffer_hits",
    "buffer_misses",
    "buffer_hit_rate",
)

#: Keys that are estimates of distributions, not per-run guarantees;
#: they still get an error column (that is the whole point).
_MAX_RENDERED_PARTITIONS = 16


@dataclass
class PlanNode:
    """One node of an (annotated) plan tree.

    ``predicted`` holds the analytical model's values, ``observed`` the
    measured ones (ANALYZE only); :meth:`errors` pairs them up.  Keys
    are shared between the two dicts where comparison makes sense
    (``seconds``, ``comparisons``, ``replicated``, ...).  ``corrected``
    holds drift-corrected predictions — the raw model value times the
    algorithm's recent observed wall-time drift factor — and renders as
    its own column when any node carries one.
    """

    name: str
    kind: str = "node"  # join | phase | operator | shard | partition | note
    detail: str = ""
    predicted: dict = field(default_factory=dict)
    observed: dict = field(default_factory=dict)
    corrected: dict = field(default_factory=dict)
    children: "list[PlanNode]" = field(default_factory=list)

    def add(self, child: "PlanNode") -> "PlanNode":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def errors(self) -> dict:
        """Signed relative error per shared key: ``(obs − pred) / obs``.

        Positive means the prediction undershot (the run did more / took
        longer than predicted) — the paper's *average prediction error*
        is the mean absolute value of these.  Keys whose observation is
        zero map to ``None`` (no meaningful relative error).
        """
        out: dict = {}
        for key, predicted in self.predicted.items():
            if key not in self.observed:
                continue
            observed = self.observed[key]
            if not isinstance(predicted, (int, float)) or isinstance(
                predicted, bool
            ) or not isinstance(observed, (int, float)) or isinstance(
                observed, bool
            ):
                continue
            if observed == 0:
                out[key] = 0.0 if predicted == 0 else None
            else:
                out[key] = (observed - predicted) / observed
        return out

    def to_dict(self) -> dict:
        """JSON-able representation of the subtree."""
        return {
            "name": self.name,
            "kind": self.kind,
            "detail": self.detail,
            "predicted": dict(self.predicted),
            "corrected": dict(self.corrected),
            "observed": dict(self.observed),
            "errors": self.errors(),
            "children": [child.to_dict() for child in self.children],
        }


def _fmt(value) -> str:
    if value is None:
        return "·"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _fmt_error(error) -> str:
    if error is None:
        return "·"
    return f"{error:+.1%}"


def _metric_keys(node: PlanNode) -> list[str]:
    keys = set(node.predicted) | set(node.observed) | set(node.corrected)
    ordered = [key for key in _METRIC_ORDER if key in keys]
    ordered.extend(sorted(keys - set(_METRIC_ORDER)))
    return ordered


@dataclass
class ExplainReport:
    """A rendered-or-renderable plan tree plus its header context."""

    root: PlanNode
    mode: str  # "explain" | "analyze"
    header: list[str] = field(default_factory=list)

    @property
    def analyzed(self) -> bool:
        return self.mode == "analyze"

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "header": list(self.header),
            "plan": self.root.to_dict(),
        }

    def render(self) -> str:
        """Deterministic plain-text plan tree.

        Layout: one header block, then per node a name line followed by
        one aligned row per metric — predicted, corrected (when a drift
        history supplied correction factors), observed (ANALYZE), and
        the signed relative-error column.
        """
        lines = list(self.header)
        with_corrected = any(node.corrected for node in self.root.walk())
        columns = f"{'':34}{'predicted':>14}"
        if with_corrected:
            columns += f"  {'corrected':>14}"
        if self.analyzed:
            columns += f"  {'observed':>14}  {'err':>8}"
        lines.append(columns)
        self._render_node(self.root, "", None, lines, with_corrected)
        return "\n".join(lines)

    def _render_node(
        self, node: PlanNode, prefix: str, is_last, lines: list[str],
        with_corrected: bool = False,
    ) -> None:
        connector = "" if is_last is None else ("└─ " if is_last else "├─ ")
        title = node.name + (f"  [{node.detail}]" if node.detail else "")
        lines.append(f"{prefix}{connector}{title}")
        child_prefix = prefix + (
            "" if is_last is None else ("   " if is_last else "│  ")
        )
        metric_prefix = child_prefix + ("│  " if node.children else "   ")
        errors = node.errors()
        for key in _metric_keys(node):
            label = f"{metric_prefix}{key}"
            row = f"{label:<34}{_fmt(node.predicted.get(key)):>14}"
            if with_corrected:
                row += f"  {_fmt(node.corrected.get(key)):>14}"
            if self.analyzed:
                row += (
                    f"  {_fmt(node.observed.get(key)):>14}"
                    f"  {_fmt_error(errors.get(key)) if key in errors else '':>8}"
                )
            lines.append(row.rstrip())
        for index, child in enumerate(node.children):
            self._render_node(
                child, child_prefix, index == len(node.children) - 1, lines,
                with_corrected,
            )


@dataclass
class AnalyzeResult:
    """Everything ANALYZE produces: the annotated plan, the join's real
    output (bit-identical to an un-analyzed run), and the drift record."""

    report: ExplainReport
    pairs: set
    metrics: object  # JoinMetrics
    drift: object  # repro.obs.drift.DriftRecord

    def render(self) -> str:
        return self.report.render()


# ----------------------------------------------------------------------
# Predicted plan construction
# ----------------------------------------------------------------------


def build_plan_from_statistics(
    algorithm: str,
    k: int,
    r_size: int,
    s_size: int,
    theta_r: float,
    theta_s: float,
    model: TimeModel = PAPER_TIME_MODEL,
    *,
    partitioner=None,
    signature_bits: int = 160,
    engine: str = "numpy",
    workers: int = 1,
    backend: str = "serial",
    page_size: int = 4096,
    operator_levels: int = 3,
    drift_corrections: dict | None = None,
    shj_bits: int = 10,
    lattice_levels: int = 6,
    tau: int | None = None,
    quadrants: "list[dict] | None" = None,
) -> ExplainReport:
    """Build the predicted (EXPLAIN) plan tree from join statistics.

    ``partitioner`` (optional) lets the inspector show the concrete
    operator structure — for a :class:`~repro.core.dcj.DCJPartitioner`
    the α/β tree down to ``operator_levels`` levels.  The time formula's
    two terms are mapped onto the phases they model: ``c1·x`` onto the
    joining phase (comparison CPU) and ``c2·y·k^c3`` onto the
    partitioning phase (replication I/O and fragmentation); the
    verification phase is outside the paper's model and carries no time
    prediction.

    ``drift_corrections`` (an ``{algorithm: factor}`` mapping, e.g. from
    :func:`repro.obs.adaptive.drift_corrections`) adds the drift-aware
    optimizer's view: every time prediction also appears in a
    *corrected* column, multiplied by the algorithm's factor.

    Besides the paper's disk-based ``DCJ``/``PSJ``/``LSJ``, two further
    algorithms render structural plans: ``"SHJ"`` shows the submask
    lattice it probes level by level (``shj_bits`` wide signatures, the
    first ``lattice_levels`` levels expanded), and ``"HYBRID"`` shows
    the cardinality switchover at ``tau`` with one sub-plan per active
    quadrant (pass ``quadrants`` — dicts with ``label``, ``algorithm``,
    ``k``, ``r_size``, ``s_size``, ``theta_r``, ``theta_s`` — for exact
    quadrant statistics; otherwise a median-split approximation is
    used).  Neither is covered by the Section 5 time model, so SHJ nodes
    predict probe counts rather than seconds.
    """
    from ..analysis.factors import predict_quantities
    from ..storage.serialization import partition_entry_size

    if theta_r <= 0 or theta_s <= 0:
        raise ConfigurationError(
            "cannot explain a join over empty sets (θ must be positive)"
        )
    corrections = drift_corrections or {}
    if algorithm == "SHJ":
        return _build_shj_plan(
            r_size, s_size, theta_r, theta_s,
            shj_bits=shj_bits, lattice_levels=lattice_levels,
        )
    if algorithm == "HYBRID":
        return _build_hybrid_plan(
            r_size, s_size, theta_r, theta_s, model,
            corrections=corrections, tau=tau, quadrants=quadrants,
            signature_bits=signature_bits, engine=engine,
            page_size=page_size,
        )
    quantities = predict_quantities(
        algorithm, k, theta_r, theta_s, r_size, s_size
    )
    x = quantities["signature_comparisons"]
    y = quantities["replicated_signatures"]
    cpu_seconds, repl_seconds = model.predict_terms(x, y, k)
    entry_bytes = partition_entry_size((signature_bits + 7) // 8)
    # Both relations' partition stores are written once during
    # partitioning and read once during joining.
    partition_pages = max(1, round(y * entry_bytes / page_size))

    root = PlanNode(
        "set containment join",
        kind="join",
        detail=f"{algorithm} k={k}",
        predicted={
            "seconds": cpu_seconds + repl_seconds,
            "comparisons": x,
            "comparison_factor": quantities["comparison_factor"],
            "replicated": y,
            "replication_factor": quantities["replication_factor"],
        },
    )
    partition = root.add(PlanNode(
        "phase.partition",
        kind="phase",
        detail=_describe_partitioner(partitioner, algorithm, k),
        predicted={
            "seconds": repl_seconds,
            "replicated": y,
            "partition_pages": partition_pages,
        },
    ))
    _attach_operator_tree(
        partition, partitioner, theta_r, theta_s, operator_levels
    )
    join_detail = f"block nested loop, engine={engine}"
    if workers > 1:
        join_detail += f", workers={workers} ({backend} backend)"
    root.add(PlanNode(
        "phase.join",
        kind="phase",
        detail=join_detail,
        predicted={
            "seconds": cpu_seconds,
            "comparisons": x,
        },
    ))
    root.add(PlanNode(
        "phase.verify",
        kind="phase",
        detail="sorted fetch + exact subset test (outside the time model)",
    ))
    _apply_corrections(root, algorithm, corrections)

    header = [
        f"{algorithm} set containment join"
        f"  |R|={r_size} (θ_R≈{theta_r:.2f})  ⋈⊆  |S|={s_size}"
        f" (θ_S≈{theta_s:.2f})",
        f"model: time(x,y,k) = c1·x + c2·y·k^c3"
        f"  (c1={model.c1:.4g}, c2={model.c2:.4g}, c3={model.c3:.4g})",
        "",
    ]
    return ExplainReport(root=root, mode="explain", header=header)


def _apply_corrections(root: PlanNode, algorithm: str, corrections: dict) -> None:
    """Annotate a plan's time predictions with the drift-corrected view.

    The correction factor scales wall time only — the x/y quantities are
    work counts the drift layer tracks separately — so every node that
    predicts ``seconds`` gets a corrected ``seconds``, and the root also
    shows the factor itself under ``drift_correction``.
    """
    factor = corrections.get(algorithm)
    if factor is None:
        return
    for node in root.walk():
        if "seconds" in node.predicted:
            node.corrected["seconds"] = node.predicted["seconds"] * factor
    root.corrected["drift_correction"] = factor


def _build_shj_plan(
    r_size: int,
    s_size: int,
    theta_r: float,
    theta_s: float,
    *,
    shj_bits: int,
    lattice_levels: int,
) -> ExplainReport:
    """The SHJ plan: hash build, then the submask lattice, level by level.

    SHJ probes every submask of ``sig(s)``; with ``b = shj_bits`` and an
    expected ``m = b·(1 − (1 − 1/b)^θ_S)`` set bits per S-signature, a
    probe walks a lattice of ``2^m`` submasks — ``C(m, ℓ)`` of them at
    level ℓ (ℓ bits cleared).  Each level is its own plan node so the
    exponential blow-up that motivates the paper's disk-based algorithms
    is visible in the plan itself.  SHJ sits outside the Section 5 time
    model, so nodes predict probe counts, not seconds.
    """
    from math import comb

    if not 1 <= shj_bits <= 24:
        raise ConfigurationError(
            f"SHJ signature width must be in 1..24 bits, got {shj_bits}"
        )
    b = shj_bits
    m_r = b * (1.0 - (1.0 - 1.0 / b) ** theta_r)
    m_s = b * (1.0 - (1.0 - 1.0 / b) ** theta_s)
    m = max(1, round(m_s))
    probes = s_size * 2**m

    root = PlanNode(
        "set containment join",
        kind="join",
        detail=f"SHJ, b={b}-bit signatures (main-memory)",
        predicted={
            "probes": probes,
            "E_signature_bits_r": m_r,
            "E_signature_bits_s": m_s,
        },
    )
    root.add(PlanNode(
        "phase.build",
        kind="phase",
        detail=f"hash table over R keyed by {b}-bit signature",
        predicted={"buckets": min(r_size, 2**b)},
    ))
    probe = root.add(PlanNode(
        "phase.probe",
        kind="phase",
        detail="enumerate the submask lattice of sig(s), probe per submask",
        predicted={"probes": probes},
    ))
    shown = min(m, lattice_levels)
    for level in range(shown + 1):
        probe.add(PlanNode(
            f"lattice.level {level}",
            kind="operator",
            detail=f"submasks with {level} of ≈{m} bits cleared",
            predicted={"probes": s_size * comb(m, level)},
        ))
    if m > shown:
        elided = s_size * sum(comb(m, level) for level in range(shown + 1, m + 1))
        probe.add(PlanNode(
            f"… lattice levels {shown + 1}..{m} elided",
            kind="note",
            detail=f"{elided} further probes",
        ))
    root.add(PlanNode(
        "phase.verify",
        kind="phase",
        detail="exact subset test on probe hits (outside the time model)",
    ))
    header = [
        f"SHJ set containment join"
        f"  |R|={r_size} (θ_R≈{theta_r:.2f})  ⋈⊆  |S|={s_size}"
        f" (θ_S≈{theta_s:.2f})",
        "model: n/a — SHJ predates the Section 5 time model"
        f" (probe cost 2^popcount(sig(s)), E≈2^{m_s:.2f} per S-tuple)",
        "",
    ]
    return ExplainReport(root=root, mode="explain", header=header)


def _build_hybrid_plan(
    r_size: int,
    s_size: int,
    theta_r: float,
    theta_s: float,
    model: TimeModel,
    *,
    corrections: dict,
    tau: int | None,
    quadrants: "list[dict] | None",
    signature_bits: int,
    engine: str,
    page_size: int,
) -> ExplainReport:
    """The hybrid plan: the switchover at τ plus one sub-plan per quadrant.

    Mirrors :func:`repro.core.hybrid.hybrid_join`: both relations split
    at cardinality τ, the impossible large⋈small quadrant is dropped,
    and each surviving quadrant is planned independently.  Without exact
    ``quadrants`` statistics a median-split approximation is used (each
    relation halves; the small half's θ scaled by 2/3, the large's by
    4/3 — the halves of a distribution straddle its mean).
    """
    from ..core.optimizer import plan_from_statistics

    if tau is None:
        tau = max(1, round(
            (theta_r * r_size + theta_s * s_size) / (r_size + s_size)
        ))
    if quadrants is None:
        quadrants = _approximate_quadrants(r_size, s_size, theta_r, theta_s)

    root = PlanNode(
        "hybrid set containment join",
        kind="join",
        detail=f"cardinality switchover at τ={tau}",
    )
    root.add(PlanNode(
        "switchover",
        kind="operator",
        detail=(
            f"split R and S at |t| < τ={tau}; "
            "drop large⋈small (|r| ≥ τ > |s| forbids r ⊆ s)"
        ),
        predicted={"tau": tau, "quadrants": len(quadrants)},
    ))
    totals = {"seconds": 0.0, "comparisons": 0.0, "replicated": 0.0}
    corrected_total = 0.0
    any_corrected = False
    for quadrant in quadrants:
        sub_algorithm = quadrant.get("algorithm")
        sub_k = quadrant.get("k")
        if sub_algorithm is None or sub_k is None:
            sub_plan = plan_from_statistics(
                quadrant["r_size"], quadrant["s_size"],
                quadrant["theta_r"], quadrant["theta_s"], model,
                drift_history=corrections or None,
            )
            sub_algorithm, sub_k = sub_plan.algorithm, sub_plan.k
        sub_report = build_plan_from_statistics(
            sub_algorithm, sub_k,
            quadrant["r_size"], quadrant["s_size"],
            quadrant["theta_r"], quadrant["theta_s"], model,
            signature_bits=signature_bits, engine=engine,
            page_size=page_size, drift_corrections=corrections,
        )
        node = sub_report.root
        node.name = f"quadrant.{quadrant['label']}"
        node.detail = (
            f"{sub_algorithm} k={sub_k}, "
            f"|R_q|={quadrant['r_size']} |S_q|={quadrant['s_size']}"
        )
        root.add(node)
        totals["seconds"] += node.predicted.get("seconds", 0.0)
        totals["comparisons"] += node.predicted.get("comparisons", 0.0)
        totals["replicated"] += node.predicted.get("replicated", 0.0)
        if "seconds" in node.corrected:
            any_corrected = True
            corrected_total += node.corrected["seconds"]
        else:
            corrected_total += node.predicted.get("seconds", 0.0)
    root.predicted.update(totals)
    if any_corrected:
        root.corrected["seconds"] = corrected_total
    header = [
        f"HYBRID set containment join"
        f"  |R|={r_size} (θ_R≈{theta_r:.2f})  ⋈⊆  |S|={s_size}"
        f" (θ_S≈{theta_s:.2f})",
        f"model: time(x,y,k) = c1·x + c2·y·k^c3 per quadrant"
        f"  (c1={model.c1:.4g}, c2={model.c2:.4g}, c3={model.c3:.4g})",
        "",
    ]
    return ExplainReport(root=root, mode="explain", header=header)


def _approximate_quadrants(
    r_size: int, s_size: int, theta_r: float, theta_s: float,
) -> "list[dict]":
    """Statistics-only quadrant estimates for a median-τ hybrid split."""
    r_half, s_half = max(1, r_size // 2), max(1, s_size // 2)
    small_r = max(theta_r * 2.0 / 3.0, 1e-9)
    large_r = theta_r * 4.0 / 3.0
    small_s = max(theta_s * 2.0 / 3.0, 1e-9)
    large_s = theta_s * 4.0 / 3.0
    return [
        {"label": "small⋈small", "r_size": r_half, "s_size": s_half,
         "theta_r": small_r, "theta_s": small_s},
        {"label": "small⋈large", "r_size": r_half, "s_size": s_half,
         "theta_r": small_r, "theta_s": large_s},
        {"label": "large⋈large", "r_size": r_half, "s_size": s_half,
         "theta_r": large_r, "theta_s": large_s},
    ]


def _describe_partitioner(partitioner, algorithm: str, k: int) -> str:
    if partitioner is not None:
        describe = getattr(partitioner, "describe", None)
        if describe is not None:
            return describe()
    return f"{algorithm}, k={k}"


def _attach_operator_tree(
    parent: PlanNode, partitioner, theta_r: float, theta_s: float,
    operator_levels: int,
) -> None:
    """For DCJ: graft the α/β operator tree under the partition phase.

    Each node shows its partitioning function and the per-tuple
    replication probability the paper's model assigns it (an S-tuple
    replicates at an α-node when h fires, an R-tuple at a β-node when h
    does not); each node also carries the expected copies of one
    R-/S-tuple *after* its level, from the Table 7 transition matrices.
    """
    from ..core.dcj import DCJPartitioner

    if not isinstance(partitioner, DCJPartitioner):
        return
    from ..analysis.factors import dcj_level_copies

    lam = theta_s / theta_r
    q = lam / (1.0 + lam)  # per-level no-fire probability on an R-set
    p_s = 1.0 - q**lam  # per-level firing probability on an S-set
    copies = dcj_level_copies(partitioner.num_levels, theta_r, theta_s)
    nodes_by_path: dict[str, PlanNode] = {}
    rendered = 0
    for spec in partitioner.operator_nodes(max_levels=operator_levels):
        level = spec["level"]
        if spec["op"] == "α":
            predicted = {"p_replicate_s": p_s}
        else:
            predicted = {"p_replicate_r": q}
        predicted["E_copies_r"], predicted["E_copies_s"] = copies[level]
        node = PlanNode(
            f"{spec['op']}({spec['function']})",
            kind="operator",
            detail=f"level {level}, path {spec['path'] or 'root'}",
            predicted=predicted,
        )
        nodes_by_path[spec["path"]] = node
        owner = nodes_by_path.get(spec["path"][:-1]) if spec["path"] else None
        (owner if owner is not None else parent).add(node)
        rendered += 1
    if partitioner.num_levels > operator_levels:
        total = 2**partitioner.num_levels - 1
        parent.add(PlanNode(
            f"… {total - rendered} deeper operator nodes elided",
            kind="note",
            detail=f"levels {operator_levels}..{partitioner.num_levels - 1}",
        ))


# ----------------------------------------------------------------------
# Observed stitching (ANALYZE)
# ----------------------------------------------------------------------


def attach_observed(report: ExplainReport, trace_source, metrics) -> ExplainReport:
    """Stitch a finished run's observations onto a predicted plan.

    ``trace_source`` is anything :func:`repro.obs.export.span_records`
    accepts (typically the :class:`~repro.obs.trace.Tracer` the join ran
    under); ``metrics`` the run's
    :class:`~repro.core.metrics.JoinMetrics`.  Counter-valued
    observations come from the metrics (the paper's authoritative
    accounting); durations come from span durations, i.e. from the
    tracer's injectable clocks, which keeps ANALYZE deterministic in
    tests.
    """
    from .export import span_records
    from .export import _tree_from_records  # shared span-tree builder

    roots = _tree_from_records(span_records(trace_source))
    join_span = _find_span(roots, "join")
    report.mode = "analyze"

    root = report.root
    root.observed.update(
        comparisons=metrics.signature_comparisons,
        comparison_factor=round(metrics.comparison_factor, 9),
        replicated=metrics.replicated_signatures,
        replication_factor=round(metrics.replication_factor, 9),
        results=metrics.result_size,
    )
    if join_span is not None:
        root.observed["seconds"] = join_span.duration

    phase_nodes = {node.name: node for node in root.children}
    partition_span = _find_span(roots, "phase.partition")
    if "phase.partition" in phase_nodes:
        node = phase_nodes["phase.partition"]
        node.observed.update(
            replicated=metrics.replicated_signatures,
            page_reads=metrics.partitioning.page_reads,
            page_writes=metrics.partitioning.page_writes,
            partition_pages=metrics.partitioning.page_writes,
        )
        if partition_span is not None:
            node.observed["seconds"] = partition_span.duration
            for key in (
                "alpha_evaluations", "beta_evaluations",
                "alpha_replications", "beta_replications",
            ):
                if key in partition_span.attrs:
                    node.observed[key] = partition_span.attrs[key]
    join_phase_span = _find_span(roots, "phase.join") or _find_span(
        roots, "phase.join+verify"
    )
    if "phase.join" in phase_nodes:
        node = phase_nodes["phase.join"]
        node.observed.update(
            comparisons=metrics.signature_comparisons,
            candidates=metrics.candidates,
            page_reads=metrics.joining.page_reads,
            page_writes=metrics.joining.page_writes,
            buffer_hits=metrics.buffer_hits,
            buffer_misses=metrics.buffer_misses,
        )
        if join_phase_span is not None:
            node.observed["seconds"] = join_phase_span.duration
            _attach_join_children(node, join_phase_span)
    verify_span = _find_span(roots, "phase.verify")
    if "phase.verify" in phase_nodes:
        node = phase_nodes["phase.verify"]
        node.observed.update(
            candidates=metrics.candidates,
            false_positives=metrics.false_positives,
            results=metrics.result_size,
            page_reads=metrics.verification.page_reads,
        )
        if verify_span is not None:
            node.observed["seconds"] = verify_span.duration
    return report


def _find_span(roots, name: str):
    for root in roots:
        for span in root.walk():
            if span.name == name:
                return span
    return None


def _attach_join_children(node: PlanNode, join_span) -> None:
    """Per-shard (parallel) or per-partition (serial) observed rows."""
    shards = [s for s in join_span.children if s.name == "shard"]
    if shards:
        for span in sorted(shards, key=lambda s: s.attrs.get("index", 0)):
            observed = {
                "seconds": span.duration,
                "comparisons": span.attrs.get("comparisons"),
                "candidates": span.attrs.get("pairs"),
                "page_reads": span.attrs.get("page_reads"),
                "buffer_hits": span.attrs.get("buffer_hits"),
                "buffer_misses": span.attrs.get("buffer_misses"),
            }
            predicted = {}
            if "predicted_comparisons" in span.attrs:
                predicted["comparisons"] = span.attrs["predicted_comparisons"]
            node.add(PlanNode(
                f"shard {span.attrs.get('index', '?')}",
                kind="shard",
                detail=f"{span.attrs.get('partitions', '?')} partitions",
                predicted=predicted,
                observed={k: v for k, v in observed.items() if v is not None},
            ))
        return
    partitions = [s for s in join_span.children if s.name == "join.partition"]
    partitions.sort(
        key=lambda s: (-s.attrs.get("comparisons", 0),
                       s.attrs.get("partition", 0))
    )
    for span in partitions[:_MAX_RENDERED_PARTITIONS]:
        node.add(PlanNode(
            f"partition {span.attrs.get('partition', '?')}",
            kind="partition",
            detail=(
                f"|R_p|={span.attrs.get('r_entries', '?')} "
                f"|S_p|={span.attrs.get('s_entries', '?')}"
            ),
            observed={
                "seconds": span.duration,
                "comparisons": span.attrs.get("comparisons", 0),
            },
        ))
    if len(partitions) > _MAX_RENDERED_PARTITIONS:
        node.add(PlanNode(
            f"… {len(partitions) - _MAX_RENDERED_PARTITIONS} smaller "
            "partition pairs elided",
            kind="note",
        ))


# ----------------------------------------------------------------------
# Entry points over in-memory relations
# ----------------------------------------------------------------------


def _resolve_configuration(lhs, rhs, algorithm, num_partitions, model, seed,
                           drift_corrections=None):
    """Mirror :func:`repro.core.api.containment_join`'s plan selection so
    EXPLAIN shows exactly the configuration a real join would run."""
    from ..core.optimizer import choose_plan

    theta_r = max(lhs.average_cardinality(), 1e-9)
    theta_s = max(rhs.average_cardinality(), 1e-9)
    if algorithm == "auto":
        plan = choose_plan(lhs, rhs, model,
                           drift_history=drift_corrections or None)
        return (plan.algorithm, plan.k, plan.theta_r, plan.theta_s,
                plan.build_partitioner(seed=seed))
    from ..analysis.simulate import make_partitioner
    from ..core.modulo import dcj_with_any_k, lsj_with_any_k

    k = num_partitions or 32
    theta_r = max(theta_r, 1.0)
    theta_s = max(theta_s, 1.0)
    if algorithm == "PSJ" or (k & (k - 1) == 0 and k >= 2):
        partitioner = make_partitioner(algorithm, k, theta_r, theta_s, seed)
    elif algorithm == "DCJ":
        partitioner = dcj_with_any_k(k, theta_r, theta_s)
    elif algorithm == "LSJ":
        partitioner = lsj_with_any_k(k, theta_r, theta_s)
    else:
        raise ConfigurationError(f"unknown algorithm {algorithm!r}")
    return algorithm, k, theta_r, theta_s, partitioner


def explain_join(
    lhs,
    rhs,
    algorithm: str = "auto",
    num_partitions: int | None = None,
    *,
    model: TimeModel = PAPER_TIME_MODEL,
    signature_bits: int = 160,
    engine: str = "numpy",
    workers: int = 1,
    backend: str = "serial",
    seed: int = 0,
    operator_levels: int = 3,
    drift_history=None,
    shj_bits: int = 10,
    lattice_levels: int = 6,
    tau: int | None = None,
) -> ExplainReport:
    """EXPLAIN: the predicted plan for a join, without executing it.

    ``drift_history`` (drift records, a JSONL path, or an
    ``{algorithm: factor}`` mapping) makes the ``"auto"`` selection
    drift-aware and adds the corrected-prediction column (see
    :func:`build_plan_from_statistics`).  Beyond ``auto``/``DCJ``/
    ``PSJ``/``LSJ``, ``algorithm`` also accepts ``"SHJ"`` (lattice plan,
    ``shj_bits``-wide signatures) and ``"HYBRID"`` (switchover plan at
    ``tau``, default median cardinality, with per-quadrant sub-plans
    computed from the actual relation split).
    """
    if not lhs or not rhs:
        raise ConfigurationError("cannot explain a join over an empty relation")
    from ..core.optimizer import resolve_drift_corrections

    corrections = resolve_drift_corrections(drift_history)
    if algorithm == "SHJ":
        theta_r = max(lhs.average_cardinality(), 1e-9)
        theta_s = max(rhs.average_cardinality(), 1e-9)
        return build_plan_from_statistics(
            "SHJ", 1, len(lhs), len(rhs), theta_r, theta_s, model,
            shj_bits=shj_bits, lattice_levels=lattice_levels,
        )
    if algorithm == "HYBRID":
        tau, quadrants = _hybrid_quadrants_from_relations(lhs, rhs, tau)
        theta_r = max(lhs.average_cardinality(), 1e-9)
        theta_s = max(rhs.average_cardinality(), 1e-9)
        return build_plan_from_statistics(
            "HYBRID", 0, len(lhs), len(rhs), theta_r, theta_s, model,
            signature_bits=signature_bits, engine=engine,
            drift_corrections=corrections, tau=tau, quadrants=quadrants,
        )
    algorithm, k, theta_r, theta_s, partitioner = _resolve_configuration(
        lhs, rhs, algorithm, num_partitions, model, seed,
        drift_corrections=corrections,
    )
    return build_plan_from_statistics(
        algorithm, k, len(lhs), len(rhs), theta_r, theta_s, model,
        partitioner=partitioner, signature_bits=signature_bits,
        engine=engine, workers=workers, backend=backend,
        operator_levels=operator_levels, drift_corrections=corrections,
    )


def _hybrid_quadrants_from_relations(lhs, rhs, tau):
    """Exact switchover statistics from the actual cardinality split —
    the same τ default and quadrant pruning as
    :func:`repro.core.hybrid.hybrid_join`."""
    from statistics import median

    from ..core.hybrid import split_by_cardinality

    if tau is None:
        cards = [row.cardinality for row in lhs]
        cards += [row.cardinality for row in rhs]
        tau = max(1, int(median(cards)))
    r_small, r_large = split_by_cardinality(lhs, tau)
    s_small, s_large = split_by_cardinality(rhs, tau)
    quadrants = []
    for label, sub_r, sub_s in (
        ("small⋈small", r_small, s_small),
        ("small⋈large", r_small, s_large),
        ("large⋈large", r_large, s_large),
    ):
        if not len(sub_r) or not len(sub_s):
            continue
        quadrants.append({
            "label": label,
            "r_size": len(sub_r),
            "s_size": len(sub_s),
            "theta_r": max(sub_r.average_cardinality(), 1e-9),
            "theta_s": max(sub_s.average_cardinality(), 1e-9),
        })
    return tau, quadrants


def analyze_join(
    lhs,
    rhs,
    algorithm: str = "auto",
    num_partitions: int | None = None,
    *,
    model: TimeModel = PAPER_TIME_MODEL,
    signature_bits: int = 160,
    engine: str = "numpy",
    workers: int = 1,
    backend: str = "serial",
    seed: int = 0,
    operator_levels: int = 3,
    tracer=None,
    registry=None,
    drift_path: str | None = None,
    drift_history=None,
    wall=None,
) -> AnalyzeResult:
    """ANALYZE: execute the join and annotate the plan with observations.

    The join runs through :func:`repro.core.api.containment_join` — the
    same path a plain call takes — so the result pairs and the paper's
    x/y accounting are bit-identical to an un-analyzed run.  The
    predicted-vs-observed deltas are recorded as a
    :class:`~repro.obs.drift.DriftRecord` into the metrics ``registry``
    (drift gauges and error histograms) and, when ``drift_path`` is
    given, appended to that JSONL file.

    ``tracer`` (default: a fresh real-clock :class:`~repro.obs.trace.Tracer`)
    supplies the observed durations; inject fake clocks for
    deterministic output.  ``wall`` stamps the drift record.

    ``drift_history`` makes the ``"auto"`` selection drift-aware and
    adds the corrected-prediction column (see :func:`explain_join`);
    the recorded drift still compares observations against the *raw*
    model prediction — drift measures the model, not the correction.
    """
    from ..core.api import containment_join
    from .drift import compute_drift, record_drift
    from .trace import Tracer

    report = explain_join(
        lhs, rhs, algorithm, num_partitions, model=model,
        signature_bits=signature_bits, engine=engine, workers=workers,
        backend=backend, seed=seed, operator_levels=operator_levels,
        drift_history=drift_history,
    )
    if tracer is None:
        tracer = Tracer()
    pairs, metrics = containment_join(
        lhs, rhs, algorithm, num_partitions,
        signature_bits=signature_bits, model=model, seed=seed,
        workers=workers, backend=backend, tracer=tracer,
        drift_history=drift_history,
    )
    attach_observed(report, tracer, metrics)
    drift = compute_drift(
        report.root.predicted, metrics, wall=wall
    )
    record_drift(drift, registry=registry)
    if drift_path is not None:
        from .drift import append_drift_jsonl

        append_drift_jsonl(drift, drift_path)
    return AnalyzeResult(report=report, pairs=pairs, metrics=metrics,
                         drift=drift)
