"""Observability: span tracing, metrics registry, exporters.

The paper's argument is quantitative — x/y counts, per-phase I/O, the
calibrated time model ``time(x, y, k) = c1·x + c2·y·k^c3`` — so the
testbed needs to *see* where time and I/O go.  This package provides the
cross-cutting layer the rest of the system reports through:

* :mod:`.trace` — a lightweight span tracer with explicit clock
  injection, nested spans, attributes, and cross-process stitching (the
  partition-parallel workers serialize their spans back to the parent).
* :mod:`.registry` — a process-wide registry of counters, gauges and
  histograms unifying the ad-hoc counters the substrate already keeps
  (signature comparisons, replications, page I/O, buffer hits/misses,
  WAL fsyncs) behind one API, without touching the paper's x/y
  accounting.
* :mod:`.export` — exporters: JSONL trace files, Prometheus text
  format, and a human-readable console summary with a flamegraph-style
  phase breakdown.

Tracing is opt-in and free when off: the ambient tracer defaults to
:data:`~repro.obs.trace.NULL_TRACER`, whose spans are shared no-op
objects.
"""

from .registry import MetricsRegistry, get_registry, record_join
from .trace import NULL_TRACER, Span, Tracer, current_tracer, use_tracer
from .export import (
    console_summary,
    prometheus_text,
    span_records,
    validate_trace_records,
    write_trace_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "record_join",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "console_summary",
    "prometheus_text",
    "span_records",
    "validate_trace_records",
    "write_trace_jsonl",
]
