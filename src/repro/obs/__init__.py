"""Observability: span tracing, metrics registry, exporters.

The paper's argument is quantitative — x/y counts, per-phase I/O, the
calibrated time model ``time(x, y, k) = c1·x + c2·y·k^c3`` — so the
testbed needs to *see* where time and I/O go.  This package provides the
cross-cutting layer the rest of the system reports through:

* :mod:`.trace` — a lightweight span tracer with explicit clock
  injection, nested spans, attributes, and cross-process stitching (the
  partition-parallel workers serialize their spans back to the parent).
* :mod:`.registry` — a process-wide registry of counters, gauges and
  histograms unifying the ad-hoc counters the substrate already keeps
  (signature comparisons, replications, page I/O, buffer hits/misses,
  WAL fsyncs) behind one API, without touching the paper's x/y
  accounting.
* :mod:`.export` — exporters: JSONL trace files, Prometheus text
  format, and a human-readable console summary with a flamegraph-style
  phase breakdown.
* :mod:`.explain` — the EXPLAIN/ANALYZE plan inspector: predicted plan
  trees (for DCJ, the actual α/β operator tree) annotated with the
  analytical model, and — in ANALYZE mode — with the observed values
  and per-node relative errors.
* :mod:`.drift` — predicted-vs-observed drift records, published to the
  registry and persisted as JSONL, so time-model staleness is visible.
* :mod:`.adaptive` — the *act* half of the loop: a
  :class:`~repro.obs.adaptive.Recalibrator` refits the time model from
  accumulated drift when its wall-time bias exceeds a threshold,
  versioned into a :class:`~repro.obs.adaptive.ModelStore`, and
  :func:`~repro.obs.adaptive.drift_corrections` feeds per-algorithm
  correction factors back into the optimizer.
* :mod:`.serve` — a stdlib HTTP endpoint (``/metrics``, ``/healthz``)
  serving the registry in Prometheus text format.
* :mod:`.ledger` — per-query resource attribution: lane-window registry
  deltas become :class:`~repro.obs.ledger.QueryLedger` bills, stable
  :func:`~repro.obs.ledger.query_fingerprint` keys collapse a mixed
  workload into its recurring shapes, and the
  :class:`~repro.obs.ledger.WorkloadLedger` aggregates heavy hitters
  and reconciles attributed totals against the global registry exactly.

Tracing is opt-in and free when off: the ambient tracer defaults to
:data:`~repro.obs.trace.NULL_TRACER`, whose spans are shared no-op
objects.
"""

from .registry import MetricsRegistry, get_registry, record_join
from .trace import NULL_TRACER, Span, Tracer, current_tracer, use_tracer
from .export import (
    console_summary,
    prometheus_text,
    span_records,
    validate_trace_records,
    write_trace_jsonl,
)

# The inspector/drift/serve modules import core and analysis code, while
# repro.core.operator imports this package for its registry and tracer —
# so they must load lazily (PEP 562) to keep the import graph acyclic.
_LAZY = {
    "PlanNode": "explain",
    "ExplainReport": "explain",
    "AnalyzeResult": "explain",
    "build_plan_from_statistics": "explain",
    "attach_observed": "explain",
    "explain_join": "explain",
    "analyze_join": "explain",
    "DriftRecord": "drift",
    "compute_drift": "drift",
    "record_drift": "drift",
    "append_drift_jsonl": "drift",
    "read_drift_jsonl": "drift",
    "summarize_drift": "drift",
    "calibration_residuals": "drift",
    "MetricsServer": "serve",
    "serve_metrics": "serve",
    "ModelVersion": "adaptive",
    "ModelStore": "adaptive",
    "RefitOutcome": "adaptive",
    "Recalibrator": "adaptive",
    "samples_from_history": "adaptive",
    "drift_corrections": "adaptive",
    "publish_model": "adaptive",
    "RESOURCE_COUNTERS": "ledger",
    "Fingerprint": "ledger",
    "QueryLedger": "ledger",
    "WorkloadLedger": "ledger",
    "normalize_workload_name": "ledger",
    "query_fingerprint": "ledger",
}

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "record_join",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "console_summary",
    "prometheus_text",
    "span_records",
    "validate_trace_records",
    "write_trace_jsonl",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
