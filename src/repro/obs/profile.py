"""Stack-sampling profiler attributing wall time to operator phases.

The ROADMAP's next perf item (packed-bitmap signature kernels) rests on
a claim — that the signature-inclusion loop in ``compare_block``
dominates join wall time — which so far is asserted, not measured.
:class:`SamplingProfiler` produces the evidence: a daemon thread
periodically snapshots every thread's stack via
``sys._current_frames()`` and classifies each sample to a named
operator phase (``join.compare_block``, ``partition``, ``verify``,
``storage.*``, ``dist.*`` …) by walking the stack innermost-outward and
matching known functions and modules of this package.

Design constraints, mirrored from the tracer:

* **Injected clock and sleep** so tests can drive sampling cadence and
  measure overhead deterministically.
* **Observation-only** — the sampler never touches engine state, so
  results are bit-identical with the profiler on or off.
* **Self-accounting** — the sampler measures its own time per tick;
  :attr:`overhead` reports sampler-seconds / elapsed wall so the <5%
  overhead budget at the default rate is checkable in CI.

``sample_once`` accepts an explicit ``{thread_id: frame}`` mapping so
the classifier is unit-testable without real threads.
"""

from __future__ import annotations

import os
import sys
import threading
import time

__all__ = ["SamplingProfiler", "classify_stack"]

#: Default sampling rate.  A prime Hz avoids phase-locking with loops
#: that happen to run at round frequencies.
DEFAULT_HZ = 67.0

#: Innermost-first function-name → phase table.  First match on the
#: walk from the innermost frame outward wins, so a sample inside
#: ``compare_block`` called from ``_join_phase`` counts as the kernel,
#: not the scan around it.
FUNCTION_PHASES = {
    "compare_block": "join.compare_block",
    "_join_block": "join.compare_block",
    "_r_blocks": "join.scan",
    "_join_phase": "join.scan",
    "_join_and_verify_phase": "join.scan",
    "_parallel_join_phase": "join.dispatch",
    "run_parallel_join": "join.dispatch",
    "run_shard": "join.worker",
    "signature_of": "partition.signature",
    "_partition_phase": "partition",
    "_verification_phase": "verify",
    "_verify_pairs": "verify",
    "execute_join": "dist.shard",
    "_dispatch": "dist.fanout",
    "_place": "dist.placement",
    "_merge_metrics": "dist.merge",
}

#: Module-basename → phase fallback when no function matched.
MODULE_PHASES = {
    "signatures.py": "partition.signature",
    "partitioner.py": "partition",
    "partition_store.py": "storage.partitions",
    "relation_store.py": "storage.relations",
    "btree.py": "storage.btree",
    "buffer.py": "storage.buffer",
    "pager.py": "storage.pager",
    "disk.py": "storage.disk",
    "wal.py": "storage.wal",
    "sets.py": "verify",
    "intersection.py": "verify",
    "merge.py": "join.merge",
    "scheduler.py": "join.dispatch",
    "coordinator.py": "dist",
    "placement.py": "dist.placement",
    "operator.py": "join",
    "api.py": "join",
    "optimizer.py": "plan",
    "analysis": "plan",
    "hashing.py": "plan",
    "core.py": "service",
    "queue.py": "service",
    "retry.py": "service",
    "distributions.py": "data.generate",
    "generator.py": "data.generate",
    "workloads.py": "data.generate",
    "io.py": "data.io",
    "trace.py": "obs",
    "registry.py": "obs",
    "export.py": "obs",
    "profile.py": "obs",
    "flight.py": "obs",
}

_PACKAGE_MARKER = os.sep + "repro" + os.sep


def classify_stack(frame) -> "tuple[str, str] | None":
    """Map one thread's innermost frame to ``(phase, function)``.

    Walks outward until a frame inside this package matches
    :data:`FUNCTION_PHASES` (or, failing that, :data:`MODULE_PHASES`).
    Returns ``None`` for stacks with no ``repro`` frame at all (idle
    interpreter threads, the sampler itself) so they never dilute the
    report; a ``repro`` stack nothing matches classifies as
    ``("unknown", "<file>:<function>")`` — the acceptance criterion
    caps that bucket, so growth there means the table needs a row.
    """
    fallback = None
    innermost_repro = None
    current = frame
    while current is not None:
        code = current.f_code
        filename = code.co_filename
        if _PACKAGE_MARKER in filename:
            basename = os.path.basename(filename)
            label = f"{basename}:{code.co_name}"
            if innermost_repro is None:
                innermost_repro = label
            phase = FUNCTION_PHASES.get(code.co_name)
            if phase is not None:
                return phase, label
            if fallback is None:
                module_phase = MODULE_PHASES.get(basename)
                if module_phase is not None:
                    fallback = (module_phase, label)
        current = current.f_back
    if fallback is not None:
        return fallback
    if innermost_repro is not None:
        return "unknown", innermost_repro
    return None


class SamplingProfiler:
    """Daemon-thread stack sampler with per-phase attribution."""

    def __init__(self, hz: float = DEFAULT_HZ, clock=None, sleep=None,
                 frames=None, registry=None):
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.hz = hz
        self.interval = 1.0 / hz
        self._clock = clock if clock is not None else time.perf_counter
        self._frames = frames if frames is not None else sys._current_frames
        self._sleep = sleep
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._samples = 0
        self._phase_counts: dict = {}
        self._function_counts: dict = {}
        self._sampler_seconds = 0.0
        self._started_at: float | None = None
        self._elapsed = 0.0
        from .registry import get_registry

        reg = registry if registry is not None else get_registry()
        self._samples_total = reg.counter(
            "setjoin_profile_samples_total",
            "Stack samples attributed by the sampling profiler",
        )

    # -- sampling core ---------------------------------------------------

    def sample_once(self, frames=None) -> int:
        """Take one sample over ``frames`` (default: live threads).

        Returns how many thread stacks were attributed.  Separated from
        the daemon loop so tests can feed synthetic frames.
        """
        t0 = self._clock()
        frames = frames if frames is not None else self._frames()
        own = threading.get_ident()
        attributed = 0
        hits = []
        for thread_id, frame in frames.items():
            if thread_id == own:
                continue
            hit = classify_stack(frame)
            if hit is not None:
                hits.append(hit)
        with self._lock:
            self._samples += 1
            for phase, label in hits:
                self._phase_counts[phase] = \
                    self._phase_counts.get(phase, 0) + 1
                self._function_counts[label] = \
                    self._function_counts.get(label, 0) + 1
                attributed += 1
            self._sampler_seconds += self._clock() - t0
        if hits:
            self._samples_total.inc(len(hits))
        return attributed

    def _run(self) -> None:
        wait = self._sleep if self._sleep is not None else self._stop.wait
        while not self._stop.is_set():
            self.sample_once()
            wait(self.interval)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._started_at = self._clock()
        self._thread = threading.Thread(
            target=self._run, name="setjoin-profiler", daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self._elapsed += self._clock() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- reporting -------------------------------------------------------

    @property
    def elapsed(self) -> float:
        total = self._elapsed
        if self._started_at is not None:
            total += self._clock() - self._started_at
        return total

    @property
    def overhead(self) -> float:
        """Fraction of wall time spent inside the sampler itself."""
        elapsed = self.elapsed
        if elapsed <= 0.0:
            return 0.0
        with self._lock:
            return self._sampler_seconds / elapsed

    def report(self, top: int = 15) -> dict:
        """Hot-path attribution: per-phase and per-function shares."""
        with self._lock:
            samples = self._samples
            phases = dict(self._phase_counts)
            functions = dict(self._function_counts)
        attributed = sum(phases.values())
        share = lambda n: (n / attributed) if attributed else 0.0  # noqa: E731
        phase_rows = [
            {"phase": phase, "samples": count, "share": share(count)}
            for phase, count in sorted(
                phases.items(), key=lambda item: (-item[1], item[0]),
            )
        ]
        function_rows = [
            {"function": label, "samples": count, "share": share(count)}
            for label, count in sorted(
                functions.items(), key=lambda item: (-item[1], item[0]),
            )[:top]
        ]
        return {
            "hz": self.hz,
            "samples": samples,
            "attributed": attributed,
            "elapsed_seconds": self.elapsed,
            "overhead": self.overhead,
            "unknown_share": share(phases.get("unknown", 0)),
            "phases": phase_rows,
            "top_functions": function_rows,
        }

    def render(self, top: int = 15) -> str:
        """Human-readable hot-path report for the CLI / debug endpoint."""
        report = self.report(top=top)
        lines = [
            f"sampling profile: {report['attributed']} attributed samples "
            f"over {report['elapsed_seconds']:.2f}s at {report['hz']:g} Hz "
            f"(overhead {report['overhead'] * 100:.2f}%)",
        ]
        for row in report["phases"]:
            bar = "#" * max(1, int(round(row["share"] * 40)))
            lines.append(
                f"  {row['phase']:<24} {row['share'] * 100:6.1f}% "
                f"{row['samples']:>7}  {bar}"
            )
        if report["top_functions"]:
            lines.append("  hottest functions:")
            for row in report["top_functions"]:
                lines.append(
                    f"    {row['function']:<40} {row['share'] * 100:6.1f}% "
                    f"{row['samples']:>7}"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._samples = 0
            self._phase_counts.clear()
            self._function_counts.clear()
            self._sampler_seconds = 0.0
            self._elapsed = 0.0
            if self._started_at is not None:
                self._started_at = self._clock()
