"""Service-level objectives: latency/error targets and burn rates.

The query service promises, per query kind, that a target fraction of
queries finish successfully within a latency objective.  This module
turns each finished query into an SLO observation and answers the
on-call question "how fast are we spending the error budget?":

* an observation is **bad** when the query failed *or* exceeded its
  kind's latency objective;
* over each configured window, ``burn_rate = bad_fraction /
  error_budget`` — 1.0 means the budget is being consumed exactly as
  fast as the SLO allows, >1.0 means an eventual breach;
* the classic multi-window rule avoids paging on blips: an alert fires
  only when *every* window burns above the threshold (the short window
  proves the problem is current, the long one proves it is sustained).

Idle-service arithmetic is explicit: a window with zero observations
reports burn rate 0.0 and exposes its observation count, so dashboards
can distinguish "healthy" from "no data" and the math never divides by
zero (the companion fix exposes ``Histogram.observations`` for the
same reason).

Everything is published as ``setjoin_slo_*`` series on ``/metrics``:
per kind and window a burn-rate gauge and an observation-count gauge,
per kind a breach counter and an alert gauge.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["SLObjective", "SLOTracker", "DEFAULT_WINDOWS"]

#: Default burn-rate windows in seconds: a fast window that reacts and a
#: slow window that confirms.
DEFAULT_WINDOWS = (60.0, 600.0)


@dataclass(frozen=True)
class SLObjective:
    """One query kind's promise.

    ``latency`` — seconds a query may take and still count as good
    (``None`` disables the latency criterion; only errors burn budget).
    ``error_budget`` — allowed bad fraction (0.01 ⇒ 99% objective).
    """

    kind: str
    latency: float | None = None
    error_budget: float = 0.01

    def __post_init__(self):
        if self.latency is not None and self.latency <= 0:
            raise ConfigurationError(
                f"SLO latency for {self.kind!r} must be positive, "
                f"got {self.latency}"
            )
        if not 0.0 < self.error_budget <= 1.0:
            raise ConfigurationError(
                f"SLO error budget for {self.kind!r} must be in (0, 1], "
                f"got {self.error_budget}"
            )


class SLOTracker:
    """Sliding-window burn-rate computation over query outcomes.

    ``objectives`` maps query kind to :class:`SLObjective` (or to a
    plain latency float, promoted with the default budget).  The clock
    is injected; observations are pruned lazily against the slowest
    window, so memory is bounded by traffic × slowest window.
    """

    def __init__(self, objectives, windows=DEFAULT_WINDOWS,
                 alert_burn_rate: float = 1.0, clock=None, registry=None):
        if not objectives:
            raise ConfigurationError("SLOTracker needs at least one objective")
        if not windows:
            raise ConfigurationError("SLOTracker needs at least one window")
        self.windows = tuple(sorted(float(w) for w in windows))
        if self.windows[0] <= 0:
            raise ConfigurationError(
                f"SLO windows must be positive, got {windows}"
            )
        if alert_burn_rate <= 0:
            raise ConfigurationError(
                f"alert burn rate must be positive, got {alert_burn_rate}"
            )
        self.alert_burn_rate = alert_burn_rate
        self._clock = clock if clock is not None else time.monotonic
        self.objectives: "dict[str, SLObjective]" = {}
        for kind, objective in dict(objectives).items():
            if not isinstance(objective, SLObjective):
                objective = SLObjective(kind=kind, latency=float(objective))
            self.objectives[kind] = objective
        # (timestamp, good) pairs per kind, oldest first.
        self._events: "dict[str, deque]" = {
            kind: deque() for kind in self.objectives
        }
        from .registry import get_registry

        reg = registry if registry is not None else get_registry()
        self._registry = reg
        self._breaches = {
            kind: reg.counter(
                f"setjoin_slo_{kind}_breaches_total",
                f"Queries of kind {kind} that failed or exceeded the "
                "latency objective",
            )
            for kind in self.objectives
        }
        self._alerts = {
            kind: reg.gauge(
                f"setjoin_slo_{kind}_alert",
                f"1 when every burn-rate window for {kind} exceeds "
                f"{alert_burn_rate:g}",
            )
            for kind in self.objectives
        }
        self._burn_gauges = {}
        self._count_gauges = {}
        for kind in self.objectives:
            for window in self.windows:
                label = self._window_label(window)
                self._burn_gauges[(kind, window)] = reg.gauge(
                    f"setjoin_slo_{kind}_burn_rate_{label}",
                    f"Error-budget burn rate for {kind} over {label}",
                )
                self._count_gauges[(kind, window)] = reg.gauge(
                    f"setjoin_slo_{kind}_observations_{label}",
                    f"SLO observations for {kind} within {label} "
                    "(burn rate is 0 when this is 0)",
                )

    @staticmethod
    def _window_label(window: float) -> str:
        return f"{int(window)}s"

    def latency_objective(self, kind: str) -> float | None:
        objective = self.objectives.get(kind)
        return objective.latency if objective is not None else None

    def tracks(self, kind: str) -> bool:
        return kind in self.objectives

    def observe(self, kind: str, seconds: float, ok: bool) -> bool | None:
        """Record one finished query.  Returns whether it was good
        (``None`` for untracked kinds)."""
        objective = self.objectives.get(kind)
        if objective is None:
            return None
        good = bool(ok) and (
            objective.latency is None or seconds <= objective.latency
        )
        now = self._clock()
        events = self._events[kind]
        events.append((now, good))
        self._prune(events, now)
        if not good:
            self._breaches[kind].inc()
        self._publish(kind, now)
        return good

    def _prune(self, events: deque, now: float) -> None:
        horizon = now - self.windows[-1]
        while events and events[0][0] < horizon:
            events.popleft()

    def window_stats(self, kind: str, window: float,
                     now: float | None = None) -> dict:
        """``{"observations": n, "bad": n, "burn_rate": f}`` for one
        window; burn rate is 0.0 on an empty window, never an error."""
        objective = self.objectives[kind]
        now = now if now is not None else self._clock()
        horizon = now - window
        observations = 0
        bad = 0
        for timestamp, good in self._events[kind]:
            if timestamp >= horizon:
                observations += 1
                if not good:
                    bad += 1
        if observations == 0:
            burn = 0.0
        else:
            burn = (bad / observations) / objective.error_budget
        return {"observations": observations, "bad": bad, "burn_rate": burn}

    def burn_rate(self, kind: str, window: float) -> float:
        return self.window_stats(kind, window)["burn_rate"]

    def alerting(self, kind: str, now: float | None = None) -> bool:
        """Multi-window AND: every window above the alert threshold."""
        now = now if now is not None else self._clock()
        stats = [
            self.window_stats(kind, window, now=now)
            for window in self.windows
        ]
        if any(s["observations"] == 0 for s in stats):
            return False
        return all(
            s["burn_rate"] > self.alert_burn_rate for s in stats
        )

    def _publish(self, kind: str, now: float) -> None:
        for window in self.windows:
            stats = self.window_stats(kind, window, now=now)
            self._burn_gauges[(kind, window)].set(stats["burn_rate"])
            self._count_gauges[(kind, window)].set(stats["observations"])
        self._alerts[kind].set(1.0 if self.alerting(kind, now=now) else 0.0)

    def report(self) -> dict:
        """Per-kind snapshot for ``stats()`` and the debug surfaces."""
        now = self._clock()
        out = {}
        for kind, objective in self.objectives.items():
            out[kind] = {
                "latency_objective": objective.latency,
                "error_budget": objective.error_budget,
                "alerting": self.alerting(kind, now=now),
                "windows": {
                    self._window_label(window):
                        self.window_stats(kind, window, now=now)
                    for window in self.windows
                },
            }
        return out
