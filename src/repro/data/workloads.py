"""Named workloads used by the paper's experiments.

Each workload names a (R-spec, S-spec, seed, planted pairs) combination.
``case_study()`` is the exact configuration of the paper's Figures 8/9:
|R| = |S| = 10000, uniform element domain of size 10000, uniformly
distributed set cardinalities 45..55 in R and 90..110 in S (θ_R = 50,
θ_S = 100).  ``scale`` shrinks the relation sizes proportionally so the
whole harness runs quickly in pure Python; the paper's shapes (who wins,
where the optimum k sits) are preserved because they depend on factors,
not absolute sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sets import Relation
from ..errors import ConfigurationError
from .distributions import (
    UniformCardinality,
    UniformElements,
    cardinality_distribution,
    element_distribution,
)
from .generator import RelationSpec, generate_join_pair

__all__ = [
    "Workload",
    "case_study",
    "uniform_workload",
    "accuracy_workload",
    "text_corpus_workload",
    "biochemical_workload",
]

CASE_STUDY_SIZE = 10_000
CASE_STUDY_DOMAIN = 10_000


@dataclass(frozen=True)
class Workload:
    """A reproducible join input: two specs, a seed and planted pairs."""

    r_spec: RelationSpec
    s_spec: RelationSpec
    seed: int = 0
    planted_pairs: int = 0
    label: str = ""

    def materialize(self) -> tuple[Relation, Relation]:
        return generate_join_pair(
            self.r_spec, self.s_spec, seed=self.seed,
            planted_pairs=self.planted_pairs,
        )

    @property
    def theta_r(self) -> float:
        return self.r_spec.cardinality.mean()

    @property
    def theta_s(self) -> float:
        return self.s_spec.cardinality.mean()


def case_study(scale: float = 1.0, seed: int = 7, planted_pairs: int = 5) -> Workload:
    """The Section 5 case-study workload, optionally scaled down in size."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    size = max(16, int(CASE_STUDY_SIZE * scale))
    return Workload(
        r_spec=RelationSpec(
            size,
            UniformCardinality(45, 55),
            UniformElements(CASE_STUDY_DOMAIN),
            name="R",
        ),
        s_spec=RelationSpec(
            size,
            UniformCardinality(90, 110),
            UniformElements(CASE_STUDY_DOMAIN),
            name="S",
        ),
        seed=seed,
        planted_pairs=planted_pairs,
        label=f"case_study(x{scale:g})",
    )


def uniform_workload(
    r_size: int,
    s_size: int,
    theta_r: int,
    theta_s: int,
    domain_size: int = 10_000,
    seed: int = 0,
    planted_pairs: int = 0,
) -> Workload:
    """Uniform elements, constant cardinalities — the model's home turf."""
    return Workload(
        r_spec=RelationSpec.uniform(r_size, theta_r, domain_size, name="R"),
        s_spec=RelationSpec.uniform(s_size, theta_s, domain_size, name="S"),
        seed=seed,
        planted_pairs=planted_pairs,
        label=f"uniform(|R|={r_size},|S|={s_size},θR={theta_r},θS={theta_s})",
    )


def text_corpus_workload(
    num_queries: int = 300,
    num_documents: int = 500,
    vocabulary: int = 20_000,
    seed: int = 0,
    planted_pairs: int = 5,
) -> Workload:
    """Keyword queries vs documents-as-word-sets (paper's intro: "text or
    XML documents ... viewed as sets of words").

    Zipf-distributed word ids, small query sets against bimodal document
    lengths — the small-θ_R / moderate-θ_S regime.
    """
    from .distributions import BimodalCardinality, ZipfElements

    return Workload(
        r_spec=RelationSpec(
            num_queries,
            UniformCardinality(2, 5),
            ZipfElements(vocabulary, skew=0.7),
            name="Queries",
        ),
        s_spec=RelationSpec(
            num_documents,
            BimodalCardinality(60, 300, high_fraction=0.2),
            ZipfElements(vocabulary, skew=0.7),
            name="Documents",
        ),
        seed=seed,
        planted_pairs=planted_pairs,
        label="text_corpus",
    )


def biochemical_workload(
    num_signatures: int = 200,
    num_snapshots: int = 100,
    num_genes: int = 5_000,
    seed: int = 0,
    planted_pairs: int = 5,
) -> Workload:
    """Pathway signatures vs gene-expression snapshots (paper's intro:
    "biochemical databases contain sets with many thousands elements").

    Large supersets (most of the genome active per snapshot) — the regime
    where the paper shows PSJ collapsing and DCJ winning.
    """
    from .distributions import NormalCardinality

    return Workload(
        r_spec=RelationSpec(
            num_signatures,
            UniformCardinality(20, 80),
            UniformElements(num_genes),
            name="Pathways",
        ),
        s_spec=RelationSpec(
            num_snapshots,
            NormalCardinality(int(num_genes * 0.75), num_genes * 0.03),
            UniformElements(num_genes),
            name="Snapshots",
        ),
        seed=seed,
        planted_pairs=planted_pairs,
        label="biochemical",
    )


def accuracy_workload(
    element_kind: str,
    cardinality_kind: str,
    size: int = 1000,
    theta_r: int = 20,
    theta_s: int = 40,
    domain_size: int = 20_000,
    seed: int = 0,
) -> Workload:
    """One cell of the 5 x 5 accuracy-study grid (Section 4)."""
    return Workload(
        r_spec=RelationSpec(
            size,
            cardinality_distribution(cardinality_kind, theta_r),
            element_distribution(element_kind, domain_size),
            name="R",
        ),
        s_spec=RelationSpec(
            size,
            cardinality_distribution(cardinality_kind, theta_s),
            element_distribution(element_kind, domain_size),
            name="S",
        ),
        seed=seed,
        label=f"accuracy({element_kind},{cardinality_kind})",
    )
