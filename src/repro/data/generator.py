"""Seeded synthetic relation generation.

Builds in-memory :class:`repro.core.sets.Relation` objects from an element
distribution and a cardinality distribution.  Since uniform random sets
from a large domain almost never join (the paper's selectivity analysis),
:func:`generate_join_pair` can additionally *plant* containment pairs —
each planted R-set is sampled from inside a chosen S-set — to exercise
the verification phase and make result sizes controllable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.sets import Relation, SetTuple
from ..errors import ConfigurationError
from .distributions import (
    CardinalityDistribution,
    ConstantCardinality,
    ElementDistribution,
    UniformCardinality,
    UniformElements,
)

__all__ = ["RelationSpec", "generate_relation", "generate_join_pair"]


@dataclass(frozen=True)
class RelationSpec:
    """Recipe for one synthetic relation."""

    size: int
    cardinality: CardinalityDistribution
    elements: ElementDistribution
    name: str = ""

    @classmethod
    def uniform(
        cls,
        size: int,
        theta: int,
        domain_size: int,
        name: str = "",
        band: tuple[int, int] | None = None,
    ) -> "RelationSpec":
        """Uniform elements with constant cardinality θ (or a [lo, hi] band)."""
        cardinality: CardinalityDistribution
        if band is None:
            cardinality = ConstantCardinality(theta)
        else:
            cardinality = UniformCardinality(*band)
        return cls(size, cardinality, UniformElements(domain_size), name)


def generate_relation(spec: RelationSpec, seed: int = 0, start_tid: int = 0) -> Relation:
    """Materialize one relation from its spec, reproducibly."""
    if spec.size < 0:
        raise ConfigurationError(f"relation size must be >= 0, got {spec.size}")
    rng = random.Random(seed)
    relation = Relation(name=spec.name)
    for offset in range(spec.size):
        cardinality = spec.cardinality.draw(rng)
        elements = spec.elements.sample_set(rng, cardinality)
        relation.add(SetTuple(start_tid + offset, elements))
    return relation


def generate_join_pair(
    r_spec: RelationSpec,
    s_spec: RelationSpec,
    seed: int = 0,
    planted_pairs: int = 0,
) -> tuple[Relation, Relation]:
    """Generate (R, S) with ``planted_pairs`` guaranteed containments.

    Planting rewrites the first ``planted_pairs`` R-tuples to be random
    subsets of distinct S-tuples (cardinalities still drawn from R's
    distribution, clamped to the host set's size), so the join result has
    at least that many tuples regardless of domain size.
    """
    rng = random.Random(seed)
    lhs = generate_relation(r_spec, seed=rng.randrange(2**31))
    rhs = generate_relation(s_spec, seed=rng.randrange(2**31))
    if planted_pairs == 0:
        return lhs, rhs
    if planted_pairs > min(len(lhs), len(rhs)):
        raise ConfigurationError(
            f"cannot plant {planted_pairs} pairs into relations of sizes "
            f"{len(lhs)} and {len(rhs)}"
        )
    r_tids = lhs.tids()[:planted_pairs]
    s_hosts = rng.sample(rhs.tids(), planted_pairs)
    planted = Relation(name=lhs.name)
    hosts = dict(zip(r_tids, s_hosts))
    for row in lhs:
        host_tid = hosts.get(row.tid)
        if host_tid is None:
            planted.add(row)
            continue
        host = sorted(rhs[host_tid].elements)
        want = min(len(row.elements), len(host))
        subset = frozenset(rng.sample(host, max(1, want)))
        planted.add(SetTuple(row.tid, subset))
    return planted, rhs
