"""Element-value and set-cardinality distributions for synthetic relations.

The paper generates synthetic databases following Gray et al. [GEBW94] and
evaluates the analytical model's accuracy over "five different
distributions of element values, and five distributions of set
cardinalities".  This module provides both families:

Element distributions (where in the domain a set's members fall):
    uniform, zipf, self-similar (80/20), normal (clamped), clustered.

Cardinality distributions (how large each set is):
    constant, uniform band, normal, zipf-skewed, bimodal.

All distributions draw from a ``random.Random`` passed in by the caller,
so generation is fully reproducible from a seed.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from ..errors import ConfigurationError

__all__ = [
    "ElementDistribution",
    "UniformElements",
    "ZipfElements",
    "SelfSimilarElements",
    "NormalElements",
    "ClusteredElements",
    "CardinalityDistribution",
    "ConstantCardinality",
    "UniformCardinality",
    "NormalCardinality",
    "ZipfCardinality",
    "BimodalCardinality",
    "ELEMENT_DISTRIBUTIONS",
    "CARDINALITY_DISTRIBUTIONS",
    "element_distribution",
    "cardinality_distribution",
]


# ----------------------------------------------------------------------
# Element-value distributions
# ----------------------------------------------------------------------

class ElementDistribution:
    """Draws single elements from an integer domain [0, domain_size)."""

    def __init__(self, domain_size: int):
        if domain_size < 1:
            raise ConfigurationError(f"domain size must be >= 1, got {domain_size}")
        self.domain_size = domain_size

    def draw(self, rng: random.Random) -> int:
        raise NotImplementedError

    def sample_set(self, rng: random.Random, cardinality: int) -> frozenset[int]:
        """Draw a set of ``cardinality`` *distinct* elements (rejection)."""
        if cardinality > self.domain_size:
            raise ConfigurationError(
                f"cannot draw {cardinality} distinct elements from a domain "
                f"of size {self.domain_size}"
            )
        elements: set[int] = set()
        attempts = 0
        limit = 1000 * max(cardinality, 1)
        while len(elements) < cardinality:
            elements.add(self.draw(rng))
            attempts += 1
            if attempts > limit:
                # Heavily skewed distribution on a small effective support:
                # top up uniformly so generation always terminates.
                remaining = cardinality - len(elements)
                pool = [v for v in range(self.domain_size) if v not in elements]
                elements.update(rng.sample(pool, remaining))
        return frozenset(elements)


class UniformElements(ElementDistribution):
    """Uniform over the whole domain — the analytical model's assumption."""

    name = "uniform"

    def draw(self, rng: random.Random) -> int:
        return rng.randrange(self.domain_size)


class ZipfElements(ElementDistribution):
    """Zipf-distributed ranks: element i drawn with probability ∝ 1/(i+1)^s.

    Uses the rejection-inversion free approximation via the truncated
    harmonic CDF, accurate for the moderate skews (s ≈ 0.5..1.2) used in
    the accuracy study.
    """

    name = "zipf"

    def __init__(self, domain_size: int, skew: float = 1.0):
        super().__init__(domain_size)
        if skew <= 0:
            raise ConfigurationError(f"zipf skew must be > 0, got {skew}")
        self.skew = skew
        # Precompute the CDF in chunks to keep memory modest for big domains.
        weights = [1.0 / (rank + 1) ** skew for rank in range(domain_size)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: list[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)

    def draw(self, rng: random.Random) -> int:
        from bisect import bisect_left

        return min(bisect_left(self._cdf, rng.random()), self.domain_size - 1)


class SelfSimilarElements(ElementDistribution):
    """Self-similar (h / 1−h) distribution of Gray et al. [GEBW94].

    With ``h = 0.2``, 80% of draws fall in the first 20% of the domain,
    recursively (the classic 80/20 rule).
    """

    name = "selfsimilar"

    def __init__(self, domain_size: int, h: float = 0.2):
        super().__init__(domain_size)
        if not 0.0 < h < 1.0:
            raise ConfigurationError(f"self-similar h must be in (0,1), got {h}")
        self.h = h
        self._exponent = math.log(h) / math.log(1.0 - h)

    def draw(self, rng: random.Random) -> int:
        u = rng.random()
        value = int(self.domain_size * u**self._exponent)
        return min(value, self.domain_size - 1)


class NormalElements(ElementDistribution):
    """Gaussian around the domain midpoint, clamped to the domain."""

    name = "normal"

    def __init__(self, domain_size: int, spread: float = 0.2):
        super().__init__(domain_size)
        if spread <= 0:
            raise ConfigurationError(f"spread must be > 0, got {spread}")
        self.mean = (domain_size - 1) / 2.0
        self.stddev = spread * domain_size

    def draw(self, rng: random.Random) -> int:
        value = int(round(rng.gauss(self.mean, self.stddev)))
        return max(0, min(self.domain_size - 1, value))


class ClusteredElements(ElementDistribution):
    """Elements drawn uniformly within one of a few hot clusters.

    Models correlated element values (e.g. genes co-activated in
    pathways): a set's members tend to share locality.
    """

    name = "clustered"

    def __init__(self, domain_size: int, num_clusters: int = 16,
                 cluster_fraction: float = 0.02):
        super().__init__(domain_size)
        if num_clusters < 1:
            raise ConfigurationError("need at least one cluster")
        width = max(1, int(domain_size * cluster_fraction))
        stride = max(1, domain_size // num_clusters)
        self._clusters = [
            (start, min(start + width, domain_size))
            for start in range(0, domain_size, stride)
        ][:num_clusters]

    def draw(self, rng: random.Random) -> int:
        lo, hi = rng.choice(self._clusters)
        return rng.randrange(lo, hi)


# ----------------------------------------------------------------------
# Set-cardinality distributions
# ----------------------------------------------------------------------

class CardinalityDistribution:
    """Draws per-tuple set cardinalities."""

    def draw(self, rng: random.Random) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        """Expected cardinality (θ in the analytical model)."""
        raise NotImplementedError


class ConstantCardinality(CardinalityDistribution):
    """Every set has exactly θ elements — the model's assumption."""

    name = "constant"

    def __init__(self, theta: int):
        if theta < 0:
            raise ConfigurationError(f"cardinality must be >= 0, got {theta}")
        self.theta = theta

    def draw(self, rng: random.Random) -> int:
        return self.theta

    def mean(self) -> float:
        return float(self.theta)


class UniformCardinality(CardinalityDistribution):
    """Uniform over [lo, hi] — e.g. the case study's 45..55 and 90..110."""

    name = "uniform"

    def __init__(self, lo: int, hi: int):
        if not 0 <= lo <= hi:
            raise ConfigurationError(f"invalid cardinality band [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def draw(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0


class NormalCardinality(CardinalityDistribution):
    """Gaussian with floor 1 (a set is never empty unless θ really is 0)."""

    name = "normal"

    def __init__(self, mean: float, stddev: float):
        if mean <= 0 or stddev < 0:
            raise ConfigurationError("normal cardinality needs mean>0, stddev>=0")
        self._mean = mean
        self._stddev = stddev

    def draw(self, rng: random.Random) -> int:
        return max(1, int(round(rng.gauss(self._mean, self._stddev))))

    def mean(self) -> float:
        return self._mean


class ZipfCardinality(CardinalityDistribution):
    """Skewed cardinalities: most sets small, a heavy tail of large ones."""

    name = "zipf"

    def __init__(self, lo: int, hi: int, skew: float = 1.0):
        if not 1 <= lo <= hi:
            raise ConfigurationError(f"invalid cardinality band [{lo}, {hi}]")
        if skew <= 0:
            raise ConfigurationError("skew must be > 0")
        self.lo = lo
        self.hi = hi
        weights = [1.0 / (v - lo + 1) ** skew for v in range(lo, hi + 1)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)

    def draw(self, rng: random.Random) -> int:
        from bisect import bisect_left

        return self.lo + min(bisect_left(self._cdf, rng.random()),
                             self.hi - self.lo)

    def mean(self) -> float:
        return sum(
            (self.lo + index) * (self._cdf[index] - (self._cdf[index - 1] if index else 0.0))
            for index in range(len(self._cdf))
        )


class BimodalCardinality(CardinalityDistribution):
    """Mixture of two bands — e.g. short abstracts and long full texts."""

    name = "bimodal"

    def __init__(self, low: int, high: int, high_fraction: float = 0.2):
        if not 1 <= low <= high:
            raise ConfigurationError(f"invalid modes ({low}, {high})")
        if not 0.0 <= high_fraction <= 1.0:
            raise ConfigurationError("high_fraction must be in [0,1]")
        self.low = low
        self.high = high
        self.high_fraction = high_fraction

    def draw(self, rng: random.Random) -> int:
        return self.high if rng.random() < self.high_fraction else self.low

    def mean(self) -> float:
        return self.high_fraction * self.high + (1 - self.high_fraction) * self.low


# ----------------------------------------------------------------------
# Registries for the 5 x 5 accuracy study
# ----------------------------------------------------------------------

ELEMENT_DISTRIBUTIONS = ("uniform", "zipf", "selfsimilar", "normal", "clustered")
CARDINALITY_DISTRIBUTIONS = ("constant", "uniform", "normal", "zipf", "bimodal")


def element_distribution(name: str, domain_size: int) -> ElementDistribution:
    """Build one of the five named element distributions with defaults."""
    if name == "uniform":
        return UniformElements(domain_size)
    if name == "zipf":
        return ZipfElements(domain_size, skew=0.8)
    if name == "selfsimilar":
        return SelfSimilarElements(domain_size, h=0.2)
    if name == "normal":
        return NormalElements(domain_size, spread=0.2)
    if name == "clustered":
        return ClusteredElements(domain_size)
    raise ConfigurationError(f"unknown element distribution {name!r}")


def cardinality_distribution(name: str, theta: int) -> CardinalityDistribution:
    """Build one of the five named cardinality distributions around θ."""
    if name == "constant":
        return ConstantCardinality(theta)
    if name == "uniform":
        half = max(1, theta // 10)
        return UniformCardinality(max(1, theta - half), theta + half)
    if name == "normal":
        return NormalCardinality(theta, max(1.0, theta / 10.0))
    if name == "zipf":
        return ZipfCardinality(max(1, theta // 2), theta * 2, skew=1.0)
    if name == "bimodal":
        return BimodalCardinality(max(1, int(theta * 0.8)), theta * 2,
                                  high_fraction=0.2)
    raise ConfigurationError(f"unknown cardinality distribution {name!r}")
