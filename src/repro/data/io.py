"""Plain-text persistence for relations with set-valued attributes.

Format: one set per line, whitespace-separated non-negative integer
elements.  Lines may be blank or start with ``#`` (comments); tuple
identifiers are explicit with ``tid: elements...`` or implicit (the
0-based line number).  This is the format the ``setjoins`` CLI consumes.
"""

from __future__ import annotations

import os
from typing import Iterable

from ..core.sets import Relation, SetTuple
from ..errors import ConfigurationError

__all__ = ["load_relation", "save_relation"]


def load_relation(path: str, name: str = "") -> Relation:
    """Read a relation from a set-per-line text file."""
    relation = Relation(name=name or os.path.basename(path))
    with open(path) as handle:
        for line_number, raw in enumerate(handle):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if ":" in line:
                tid_text, __, elements_text = line.partition(":")
                try:
                    tid = int(tid_text)
                except ValueError as error:
                    raise ConfigurationError(
                        f"{path}:{line_number + 1}: bad tid {tid_text!r}"
                    ) from error
            else:
                tid = line_number
                elements_text = line
            try:
                elements = frozenset(int(tok) for tok in elements_text.split())
            except ValueError as error:
                raise ConfigurationError(
                    f"{path}:{line_number + 1}: non-integer element"
                ) from error
            relation.add(SetTuple(tid, elements))
    return relation


def save_relation(relation: Relation, path: str, explicit_tids: bool = True) -> int:
    """Write a relation to a text file; returns the tuple count.

    ``explicit_tids=False`` writes bare element lists, which only
    round-trips when tids are the consecutive line numbers.
    """
    count = 0
    with open(path, "w") as handle:
        handle.write(f"# relation {relation.name or '?'} — one set per line\n")
        for row in relation:
            elements = " ".join(str(e) for e in sorted(row.elements))
            if explicit_tids:
                handle.write(f"{row.tid}: {elements}\n")
            else:
                handle.write(f"{elements}\n")
            count += 1
    return count
