"""Command-line interface: ``setjoins <command>``.

Commands:

* ``join``       -- run a set containment join over two set files
                    (``--explain`` / ``--analyze`` for the plan inspector)
* ``plan``       -- run the optimizer's 5-step selection procedure only
* ``experiment`` -- regenerate one of the paper's figures/tables
* ``serve``      -- expose process metrics over HTTP (Prometheus format),
                    or with ``--service DB`` the long-lived query service
                    (admission control, deadlines, retries, /join + /probe;
                    ``--capture JSONL`` records every query for replay)
* ``workload``   -- aggregate a capture file into the heavy-hitter report
* ``replay``     -- re-execute a capture against a database and diff
                    answers and deterministic resources per query
* ``ablate``     -- run the component-importance ablation matrix and
                    rank components by their deltas vs baseline
* ``demo``       -- the Section 2 worked example, end to end

Set files are plain text: one set per line, whitespace-separated
non-negative integer elements; the line number (0-based) is the tuple id.
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis.timemodel import PAPER_TIME_MODEL
from .core.optimizer import choose_plan
from .core.operator import run_disk_join
from .core.sets import Relation
from .errors import SetJoinError

__all__ = ["main", "load_relation_file"]

# Wall-clock reference for history timestamps (injected-clock idiom:
# stored once so tests can monkeypatch it; library code never calls
# time.time() directly — the CI clock lint enforces this).
_WALL_CLOCK = time.time


def load_relation_file(path: str, name: str = "") -> Relation:
    """Parse a one-set-per-line text file into a relation."""
    from .data.io import load_relation

    return load_relation(path, name=name)


def _cmd_join(arguments) -> int:
    import os

    lhs = load_relation_file(arguments.r_file, "R")
    rhs = load_relation_file(arguments.s_file, "S")
    algorithm = (
        "auto" if arguments.algorithm == "auto"
        else arguments.algorithm.upper()
    )
    if arguments.drift and not (arguments.analyze or arguments.explain):
        print("error: --drift requires --analyze (or --explain, which "
              "uses the history read-only)", file=sys.stderr)
        return 2
    if arguments.recalibrate and not (arguments.drift and arguments.analyze):
        print("error: --recalibrate requires --analyze --drift PATH",
              file=sys.stderr)
        return 2

    # The closed loop: the model store's freshest recalibrated version
    # plans this join, and the drift history (when it already exists)
    # weights the auto selection by each algorithm's recent drift.
    model = PAPER_TIME_MODEL
    store = None
    if arguments.recalibrate or arguments.model_store:
        from .obs.adaptive import ModelStore

        store_path = arguments.model_store or (
            f"{arguments.drift}.models.json" if arguments.drift else None
        )
        store = ModelStore(store_path)
        model = store.active
        if store.active_version:
            print(f"# planning with recalibrated model v"
                  f"{store.active_version} (c1={model.c1:.4g}, "
                  f"c2={model.c2:.4g}, c3={model.c3:.4g})",
                  file=sys.stderr)
    drift_history = (
        arguments.drift
        if arguments.drift and os.path.exists(arguments.drift) else None
    )

    if arguments.shards > 1:
        if arguments.analyze or arguments.drift:
            print("error: --analyze/--drift are not supported with "
                  "--shards yet; use the single-database path",
                  file=sys.stderr)
            return 2
        return _run_sharded_join(arguments, lhs, rhs, algorithm, model)

    if arguments.explain:
        from .obs.explain import explain_join

        report = explain_join(
            lhs, rhs, algorithm, arguments.partitions,
            model=model,
            signature_bits=arguments.signature_bits,
            engine=arguments.engine,
            workers=arguments.workers,
            backend=arguments.parallel_backend,
            drift_history=drift_history,
        )
        print(report.render())
        return 0

    tracer = None
    if arguments.trace or arguments.trace_summary or arguments.analyze:
        from .obs import Tracer

        tracer = Tracer()

    if arguments.analyze:
        from .obs.explain import analyze_join

        analysis = analyze_join(
            lhs, rhs, algorithm, arguments.partitions,
            model=model,
            signature_bits=arguments.signature_bits,
            engine=arguments.engine,
            workers=arguments.workers,
            backend=arguments.parallel_backend,
            tracer=tracer,
            drift_path=arguments.drift,
            drift_history=drift_history,
        )
        result, metrics = analysis.pairs, analysis.metrics
        print(analysis.render())
        if arguments.drift:
            print(f"# drift record appended to {arguments.drift}",
                  file=sys.stderr)
        if arguments.recalibrate:
            from .obs.adaptive import Recalibrator

            recalibrator = Recalibrator(store=store)
            outcome = recalibrator.maybe_recalibrate(arguments.drift)
            print(f"# recalibration: {outcome.reason}", file=sys.stderr)
            if outcome.refit:
                print(f"# model store: v{store.active_version} written to "
                      f"{store.path}", file=sys.stderr)
    else:
        if algorithm == "auto":
            plan = choose_plan(lhs, rhs, model,
                               drift_history=drift_history)
            partitioner = plan.build_partitioner()
            print(f"# planned: {plan.algorithm} with k={plan.k}",
                  file=sys.stderr)
        else:
            from .analysis.simulate import make_partitioner

            partitioner = make_partitioner(
                algorithm,
                arguments.partitions,
                lhs.average_cardinality() or 1.0,
                rhs.average_cardinality() or 1.0,
            )
        result, metrics = run_disk_join(
            lhs, rhs, partitioner,
            signature_bits=arguments.signature_bits,
            engine=arguments.engine,
            workers=arguments.workers,
            backend=arguments.parallel_backend,
            tracer=tracer,
        )
        for r_tid, s_tid in sorted(result):
            print(f"{r_tid}\t{s_tid}")
    parallel_note = ""
    if arguments.workers > 1:
        parallel_note = (
            f" ({arguments.workers} workers, "
            f"{arguments.parallel_backend} backend)"
        )
    print(
        f"# {len(result)} pairs; {metrics.signature_comparisons} signature "
        f"comparisons, {metrics.replicated_signatures} replicated signatures, "
        f"{metrics.total_seconds:.3f}s{parallel_note}",
        file=sys.stderr,
    )
    if tracer is not None and arguments.trace:
        from .obs import write_trace_jsonl

        spans = write_trace_jsonl(tracer, arguments.trace)
        print(f"# trace: {spans} spans written to {arguments.trace}",
              file=sys.stderr)
    if arguments.trace or arguments.trace_summary or arguments.metrics:
        # Record before the summary prints, so the session latency
        # percentiles include the join that just ran.
        from .obs import record_join

        record_join(metrics)
    if tracer is not None and (arguments.trace or arguments.trace_summary):
        from .obs import console_summary, get_registry

        print(console_summary(tracer, registry=get_registry()),
              file=sys.stderr)
    if arguments.metrics:
        from .obs import get_registry, prometheus_text

        text = prometheus_text(get_registry())
        if arguments.metrics == "-":
            print(text, end="")
        else:
            with open(arguments.metrics, "w") as handle:
                handle.write(text)
            print(f"# metrics written to {arguments.metrics}",
                  file=sys.stderr)
    return 0


def _run_sharded_join(arguments, lhs, rhs, algorithm, model) -> int:
    """``setjoins join --shards N``: distribute the two relations over N
    in-memory shards and join through the dist coordinator."""
    from .dist import ShardedDatabase

    with ShardedDatabase.open(
        None, shards=arguments.shards, fanout=arguments.shard_fanout,
        prune=arguments.prune, model=model,
    ) as db:
        db.create_relation("R", lhs)
        db.create_relation("S", rhs)
        if arguments.explain:
            print(db.explain("R", "S"))
            return 0
        result, metrics = db.join(
            "R", "S",
            algorithm=algorithm,
            num_partitions=arguments.partitions,
            signature_bits=arguments.signature_bits,
            engine=arguments.engine,
            workers=arguments.workers,
            backend=arguments.parallel_backend,
        )
        for r_tid, s_tid in sorted(result):
            print(f"{r_tid}\t{s_tid}")
        report = db.last_placement
        print(
            f"# {len(result)} pairs; {metrics.signature_comparisons} "
            f"signature comparisons, {metrics.replicated_signatures} "
            f"replicated signatures, {metrics.total_seconds:.3f}s "
            f"({arguments.shards} shards, {arguments.shard_fanout} fan-out, "
            f"R replication factor {report.replication_factor:.3f})",
            file=sys.stderr,
        )
    return 0


def _cmd_plan(arguments) -> int:
    lhs = load_relation_file(arguments.r_file, "R")
    rhs = load_relation_file(arguments.s_file, "S")
    plan = choose_plan(lhs, rhs, PAPER_TIME_MODEL)
    print(f"algorithm: {plan.algorithm}")
    print(f"partitions: {plan.k}")
    print(f"predicted_seconds: {plan.predicted_seconds:.4f}")
    print(f"theta_r: {plan.theta_r:.2f}")
    print(f"theta_s: {plan.theta_s:.2f}")
    return 0


def _cmd_experiment(arguments) -> int:
    from contextlib import nullcontext

    from .experiments import get_experiment

    kwargs = {}
    if arguments.scale is not None and arguments.id in (
            "fig8", "fig9", "parallel", "dist"):
        kwargs["scale"] = arguments.scale
    tracer = None
    scope = nullcontext()
    if arguments.trace:
        from .obs import Tracer
        from .obs.trace import use_tracer

        tracer = Tracer()
        scope = use_tracer(tracer)
    with scope:
        result = get_experiment(arguments.id)(**kwargs)
    if arguments.plot:
        from .experiments.plotting import plot_result

        print(plot_result(result))
    else:
        print(result.render())
    if tracer is not None:
        from .obs import write_trace_jsonl

        spans = write_trace_jsonl(tracer, arguments.trace)
        print(f"# trace: {spans} spans written to {arguments.trace}",
              file=sys.stderr)
    return 0


def _cmd_generate(arguments) -> int:
    from .data.distributions import (
        cardinality_distribution,
        element_distribution,
    )
    from .data.generator import RelationSpec, generate_relation
    from .data.io import save_relation

    spec = RelationSpec(
        size=arguments.size,
        cardinality=cardinality_distribution(
            arguments.cardinality, arguments.theta
        ),
        elements=element_distribution(arguments.distribution, arguments.domain),
        name=arguments.out,
    )
    relation = generate_relation(spec, seed=arguments.seed)
    count = save_relation(relation, arguments.out)
    print(f"wrote {count} sets to {arguments.out} "
          f"(θ≈{relation.average_cardinality():.1f}, "
          f"domain {arguments.domain}, {arguments.distribution} elements, "
          f"{arguments.cardinality} cardinalities)", file=sys.stderr)
    return 0


def _wait_forever() -> None:
    import threading

    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass


def _cmd_serve(arguments) -> int:
    if arguments.service is not None:
        return _cmd_serve_service(arguments)
    from .obs.serve import MetricsServer

    server = MetricsServer(arguments.host, arguments.port,
                           token=arguments.token).start()
    auth_note = " (bearer-token auth)" if arguments.token else ""
    print(f"serving {server.url}/metrics{auth_note} and "
          f"{server.url}/healthz (Ctrl-C to stop)", file=sys.stderr)
    try:
        _wait_forever()
    finally:
        server.stop()
    return 0


def _cmd_serve_service(arguments) -> int:
    """The long-lived query service: ``repro serve --service DB``."""
    from .service import QueryService, ServiceServer

    slo = {}
    if arguments.slo_join is not None:
        slo["join"] = arguments.slo_join
    if arguments.slo_probe is not None:
        slo["probe"] = arguments.slo_probe
    service = QueryService(
        arguments.service,
        workers=arguments.workers,
        backend=arguments.backend,
        shards=arguments.shards,
        plan_cache_size=arguments.plan_cache_size,
        queue_depth=arguments.queue_depth,
        default_deadline=arguments.deadline,
        drift_path=arguments.drift,
        recalibrate_every=arguments.recalibrate_every,
        model_store=arguments.model_store,
        trace_path=arguments.trace,
        flight_recorder=arguments.flight_recorder,
        postmortem_dir=arguments.postmortems,
        slo=slo or None,
        profile_hz=arguments.profile_hz,
        capture_path=arguments.capture,
    )
    service.start()
    service.install_signal_handlers()
    server = ServiceServer(service, arguments.host, arguments.port,
                           token=arguments.token).start()
    capture_note = (
        f"; capturing workload to {arguments.capture}"
        if arguments.capture else ""
    )
    print(f"query service on {server.url} — POST /join, POST /probe, "
          f"GET /readyz, /healthz, /metrics, /debug/queries, "
          f"/debug/query/<id>, /debug/profile, /debug/workload, "
          f"/debug/slo "
          f"(workers={arguments.workers}, backend={arguments.backend}, "
          f"queue={arguments.queue_depth}{capture_note}; "
          f"SIGTERM or Ctrl-C drains)",
          file=sys.stderr)
    try:
        # Blocks until a SIGTERM/SIGINT-triggered drain completes.
        service.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        # The signal handlers already drain; this covers other exits and
        # is a no-op when the service is stopped.
        service.stop()
        print("drained and stopped", file=sys.stderr)
    return 0


def _cmd_db(arguments) -> int:
    import os

    from .database import SetJoinDatabase

    server = None
    if arguments.serve:
        from .obs.serve import MetricsServer

        server = MetricsServer(arguments.host, arguments.port,
                               token=arguments.token).start()
        print(f"# serving {server.url}/metrics", file=sys.stderr)
    sharded = (
        arguments.shards is not None
        or os.path.exists(arguments.database + ".shards.json")
    )
    try:
        opener = (
            SetJoinDatabase.open_sharded(
                arguments.database, shards=arguments.shards
            )
            if sharded else SetJoinDatabase.open(arguments.database)
        )
        with opener as db:
            status = _run_db_action(db, arguments)
        if server is not None and status == 0:
            print("# action done; still serving metrics (Ctrl-C to stop)",
                  file=sys.stderr)
            _wait_forever()
        return status
    finally:
        if server is not None:
            server.stop()


def _run_db_action(db, arguments) -> int:
    if arguments.action == "list":
        for name in db.relation_names():
            print(f"{name}\t{db.relation_size(name)} tuples")
        return 0
    if arguments.action == "load":
        if len(arguments.args) != 2:
            print("usage: setjoins db FILE load NAME SETFILE",
                  file=sys.stderr)
            return 2
        name, set_file = arguments.args
        relation = load_relation_file(set_file, name)
        count = db.create_relation(name, relation)
        print(f"loaded {count} tuples into {name!r}")
        return 0
    if arguments.action == "drop":
        if len(arguments.args) != 1:
            print("usage: setjoins db FILE drop NAME", file=sys.stderr)
            return 2
        db.drop_relation(arguments.args[0])
        print(f"dropped {arguments.args[0]!r}")
        return 0
    if arguments.action == "explain":
        if len(arguments.args) != 2:
            print("usage: setjoins db FILE explain R S", file=sys.stderr)
            return 2
        print(db.explain(*arguments.args))
        if hasattr(db, "explain_plan"):
            print()
            print(db.explain_plan(*arguments.args).render())
        return 0
    if arguments.action == "reshard":
        if len(arguments.args) != 1 or not arguments.args[0].isdigit():
            print("usage: setjoins db FILE reshard N", file=sys.stderr)
            return 2
        if not hasattr(db, "reshard"):
            print("error: reshard requires a sharded database "
                  "(open with --shards)", file=sys.stderr)
            return 2
        report = db.reshard(int(arguments.args[0]))
        print(f"resharded {report.old_shard_ids} → {report.new_shard_ids}: "
              f"{report.moved_rows}/{report.total_rows} rows moved "
              f"({report.moved_fraction:.1%})")
        return 0
    if arguments.action == "join":
        if len(arguments.args) != 2:
            print("usage: setjoins db FILE join R S", file=sys.stderr)
            return 2
        pairs, metrics = db.join(*arguments.args)
        for r_tid, s_tid in sorted(pairs):
            print(f"{r_tid}\t{s_tid}")
        print(f"# {len(pairs)} pairs in {metrics.total_seconds:.3f}s "
              f"({metrics.algorithm}, k={metrics.num_partitions})",
              file=sys.stderr)
        return 0
    if arguments.action == "stats":
        for key, value in db.stats().items():
            if isinstance(value, float):
                print(f"{key}\t{value:.4f}")
            else:
                print(f"{key}\t{value}")
        return 0
    if arguments.action == "verify":
        from .errors import StorageError

        try:
            report = db.verify_integrity()
        except StorageError as error:
            print(f"INTEGRITY FAILURE: {error}", file=sys.stderr)
            return 1
        print(f"ok: {report['relations']} relations, "
              f"{report['tuples']} tuples, "
              f"{report['pages_read']} pages read, "
              f"all checksums valid")
        return 0
    print(f"unknown db action {arguments.action!r}", file=sys.stderr)
    return 2


def _cmd_workload(arguments) -> int:
    """Offline heavy-hitter report: ``setjoins workload CAPTURE``."""
    import json

    from .obs.ledger import WorkloadLedger
    from .service.capture import read_capture

    records = read_capture(arguments.capture)
    ledger = WorkloadLedger()
    for record in records:
        ledger.attribute_record(record.to_dict())
    if arguments.json:
        print(json.dumps(ledger.report(top=arguments.top),
                         sort_keys=True, indent=2))
        return 0
    totals = ledger.totals()
    print(f"{totals['queries']} queries across {ledger.fingerprints} "
          f"workload shapes ({totals['wall_seconds']:.3f}s wall, "
          f"{totals['cpu_seconds']:.3f}s cpu, "
          f"{totals['pages_read'] + totals['pages_written']} pages, "
          f"{totals['signature_comparisons']} signature comparisons)")
    for by in ("wall", "pages", "comparisons"):
        print(f"top by {by}:")
        for group in ledger.top(arguments.top, by=by):
            resources = group["resources"]
            pages = resources["pages_read"] + resources["pages_written"]
            print(f"  {group['fingerprint']}  {group['queries']:>5}q  "
                  f"{group['wall_seconds']:8.3f}s  pages={pages}  "
                  f"x={resources['signature_comparisons']}  "
                  f"{group['label']}")
    return 0


def _cmd_replay(arguments) -> int:
    """Deterministic re-execution: ``setjoins replay CAPTURE DB``."""
    import json
    import os

    from .database import SetJoinDatabase
    from .service.capture import read_capture, replay_capture

    records = read_capture(arguments.capture)
    sharded = (
        arguments.shards is not None
        or os.path.exists(arguments.database + ".shards.json")
    )
    opener = (
        SetJoinDatabase.open_sharded(
            arguments.database, shards=arguments.shards
        )
        if sharded else SetJoinDatabase.open(arguments.database)
    )
    with opener as db:
        report = replay_capture(
            records, db,
            workers=arguments.workers, backend=arguments.backend,
        )
    if arguments.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        skipped = sum(report.skipped.values())
        print(f"replayed {report.replayed}/{report.total} records "
              f"({report.matched} matched, {skipped} skipped)")
        for reason, count in sorted(report.skipped.items()):
            print(f"  skipped {count}: {reason}")
        for entry in report.digest_mismatches:
            print(f"  DIGEST MISMATCH query {entry['query_id']} "
                  f"({entry['kind']}): recorded {entry['recorded']} "
                  f"replayed {entry['replayed']}")
        for entry in report.ledger_mismatches:
            print(f"  LEDGER MISMATCH query {entry['query_id']}: "
                  f"{entry['resource']} recorded={entry['recorded']} "
                  f"replayed={entry['replayed']}")
        drift = ", ".join(
            f"{name}{value:+d}"
            for name, value in sorted(report.resource_drift.items())
            if value
        )
        if drift:
            print(f"  physical drift (informational): {drift}")
        if report.clean:
            print("replay clean: every digest and deterministic resource "
                  "matched its recording")
    return 0 if report.clean else 1


def _cmd_ablate(arguments) -> int:
    """Component-importance ablations: ``setjoins ablate``."""
    import json
    import os

    from .ablate import (
        all_components,
        build_matrix,
        check_importance,
        execute_matrix,
        parse_importance_tsv,
        render_importance_tsv,
        score_runs,
    )

    if arguments.list:
        for component in all_components():
            variants = ", ".join(sorted(component.variants))
            print(f"{component.name:<20} {component.layer:<10} "
                  f"{component.invariance:<17} variants: {variants}")
            print(f"{'':<20} {component.description}")
        return 0

    full_matrix = not arguments.component
    specs = build_matrix(
        components=arguments.component or None,
        scale=arguments.scale, seed=arguments.seed,
    )
    if not arguments.json:
        print(f"running {len(specs)} configurations "
              f"(scale={arguments.scale}, seed={arguments.seed}, "
              f"repeats={arguments.repeats})", file=sys.stderr)

    def progress(row):
        if not arguments.json:
            print(f"  {row['name']:<30} x={row['x']:<8} y={row['y']:<6} "
                  f"{row['wall_seconds']:.3f}s  [{row['run_id']}]",
                  file=sys.stderr)

    result = execute_matrix(specs, repeats=arguments.repeats,
                            progress=progress)
    report = score_runs(result["runs"])
    reconciliation = result["reconciliation"]

    failures: list[str] = []
    if not reconciliation["exact"]:
        unattributed = {
            field: entry["unattributed"]
            for field, entry in reconciliation["counters"].items()
            if entry["unattributed"]
        }
        failures.append(
            f"ledger reconciliation is not exact: {unattributed} — some "
            "code path moved resource counters outside a run window"
        )
    if arguments.check:
        with open(arguments.check) as handle:
            committed = parse_importance_tsv(handle.read())
        failures.extend(
            check_importance(report, committed, full_matrix=full_matrix))
    else:
        # Answer invariants are enforced even without a committed report.
        for component in report["components"]:
            for violation in component["violations"]:
                failures.append(
                    f"{component['component']}: answer invariant violated: "
                    f"{violation}"
                )

    if arguments.out:
        os.makedirs(arguments.out, exist_ok=True)
        stem = ("ablation_importance" if full_matrix
                else "ablation_importance_partial")
        tsv_path = os.path.join(arguments.out, stem + ".tsv")
        with open(tsv_path, "w") as handle:
            handle.write(render_importance_tsv(report))
        jsonl_path = os.path.join(arguments.out, stem + ".jsonl")
        with open(jsonl_path, "w") as handle:
            handle.write(json.dumps(
                {"schema": report["schema"], "suite": report["suite"],
                 "scale": report["scale"], "seed": report["seed"],
                 "reconciliation": reconciliation},
                sort_keys=True) + "\n")
            for row in result["runs"]:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        if not arguments.json:
            print(f"report written to {tsv_path} (+ {jsonl_path})",
                  file=sys.stderr)

    if arguments.history:
        record = {
            "schema": f"ablation-{report['schema']}",
            "scale": report["scale"],
            "seed": report["seed"],
            "recorded_at": _WALL_CLOCK(),
            "runs": {
                row["name"]: {
                    "run_id": row["run_id"],
                    "x": row["x"],
                    "y": row["y"],
                    "wall_seconds": row["wall_seconds"],
                    "fingerprint": row["fingerprint"],
                }
                for row in result["runs"]
            },
        }
        with open(arguments.history, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    if arguments.json:
        print(json.dumps(
            {"report": report, "reconciliation": reconciliation,
             "failures": failures},
            sort_keys=True, indent=2))
    else:
        for component in report["components"]:
            print(f"{component['rank']:>2}. {component['component']:<20} "
                  f"importance_det={component['importance_det']:.4f} "
                  f"importance={component['importance']:.4f} "
                  f"({component['invariance']}, variant "
                  f"{component['variant']}, "
                  f"{'ok' if component['answer_ok'] else 'VIOLATED'})")
        print(f"reconciliation: "
              f"{'exact' if reconciliation['exact'] else 'NOT EXACT'}")
        if failures:
            print("TRIPWIRE FAILURES:")
            for failure in failures:
                print(f"  - {failure}")
    return 1 if failures else 0


def _cmd_stats(arguments) -> int:
    from .analysis.statistics import collect_statistics
    from .analysis.selectivity import expected_selectivity
    from .core.signatures import recommend_signature_bits

    relations = [
        load_relation_file(path, name) for path, name in
        zip(arguments.files, ("R", "S"))
    ]
    for relation in relations:
        print(collect_statistics(relation, sample_size=arguments.sample).describe())
    if len(relations) == 2 and all(len(r) for r in relations):
        lhs, rhs = relations
        theta_r = lhs.average_cardinality()
        theta_s = rhs.average_cardinality()
        domain = max(lhs.domain_bound(), rhs.domain_bound())
        print("join estimates:")
        if theta_r and theta_s:
            selectivity = expected_selectivity(
                round(min(theta_r, theta_s)), round(max(theta_r, theta_s)),
                max(domain, round(theta_s)),
            )
            print(f"  expected selectivity ≈ {selectivity:.3e} "
                  f"(~{selectivity * len(lhs) * len(rhs):.1f} result tuples)")
            bits = recommend_signature_bits(
                theta_r, theta_s, pairs_compared=len(lhs) * len(rhs)
            )
            print(f"  recommended signature width ≥ {bits} bits")
    return 0


def _cmd_demo(arguments) -> int:
    from .experiments.worked_example import run

    print(run().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="setjoins",
        description="Set containment joins (DCJ/PSJ/LSJ reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    join = commands.add_parser("join", help="run a set containment join")
    join.add_argument("r_file", help="subset-side sets, one per line")
    join.add_argument("s_file", help="superset-side sets, one per line")
    join.add_argument(
        "--algorithm", default="auto",
        choices=["auto", "dcj", "psj", "lsj"],
    )
    join.add_argument("--partitions", "-k", type=int, default=32)
    join.add_argument("--signature-bits", type=int, default=160)
    join.add_argument("--engine", default="numpy", choices=["numpy", "python"])
    join.add_argument(
        "--workers", type=int, default=1,
        help="parallel join workers (default 1 = the serial operator)",
    )
    join.add_argument(
        "--parallel-backend", default="process",
        choices=["serial", "thread", "process"],
        help="execution backend when --workers > 1 (default process; "
        "falls back to serial where unavailable)",
    )
    join.add_argument(
        "--shards", type=int, default=1,
        help="distribute the relations over N in-memory database shards "
        "behind the dist coordinator (default 1 = single database); "
        "results and x/y accounting stay bit-identical",
    )
    join.add_argument(
        "--shard-fanout", default="thread", choices=["serial", "thread"],
        help="coordinator-level shard dispatch with --shards (default "
        "thread)",
    )
    join.add_argument(
        "--prune", default="partitions", choices=["partitions", "signature"],
        help="R-replication pruning with --shards: 'partitions' keeps "
        "x/y bit-identical; 'signature' also skips shards by signature-"
        "prefix digest (fewer shipped rows, x may shrink)",
    )
    join.add_argument(
        "--explain", action="store_true",
        help="print the predicted plan tree (analytical x/y/page/time "
        "annotations; for DCJ the α/β operator tree) without executing",
    )
    join.add_argument(
        "--analyze", action="store_true",
        help="execute the join and print the plan tree annotated with "
        "observed values and per-node relative prediction errors",
    )
    join.add_argument(
        "--drift", metavar="PATH", default=None,
        help="with --analyze: append the predicted-vs-observed drift "
        "record to PATH (JSON Lines); an existing history also makes "
        "auto selection drift-aware and adds the corrected column",
    )
    join.add_argument(
        "--recalibrate", action="store_true",
        help="with --analyze --drift: after the join, refit the time "
        "model from the drift history when its wall-time bias exceeds "
        "the threshold; refits are versioned into the model store and "
        "used for planning on subsequent runs",
    )
    join.add_argument(
        "--model-store", metavar="PATH", default=None,
        help="versioned store of recalibrated time models (default with "
        "--recalibrate: DRIFT.models.json); the freshest version plans "
        "the join",
    )
    join.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the run to PATH (JSON Lines) and "
        "print a phase breakdown to stderr",
    )
    join.add_argument(
        "--trace-summary", action="store_true",
        help="print the flamegraph-style phase breakdown to stderr "
        "after the join (no trace file needed)",
    )
    join.add_argument(
        "--metrics", metavar="PATH", nargs="?", const="-", default=None,
        help="write Prometheus text-format metrics for the run to PATH "
        "(no PATH or '-': print to stdout)",
    )
    join.set_defaults(handler=_cmd_join)

    plan = commands.add_parser("plan", help="choose algorithm and k only")
    plan.add_argument("r_file")
    plan.add_argument("s_file")
    plan.set_defaults(handler=_cmd_plan)

    experiment = commands.add_parser(
        "experiment", help="regenerate a figure/table from the paper"
    )
    experiment.add_argument("id", help="experiment id (e.g. fig8)")
    experiment.add_argument("--scale", type=float, default=None)
    experiment.add_argument(
        "--plot", action="store_true",
        help="render an ASCII chart instead of the table",
    )
    experiment.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the experiment to PATH (JSON Lines)",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    generate = commands.add_parser(
        "generate", help="generate a synthetic set file"
    )
    generate.add_argument("out", help="output file path")
    generate.add_argument("--size", type=int, default=1000,
                          help="number of sets (default 1000)")
    generate.add_argument("--theta", type=int, default=20,
                          help="average set cardinality (default 20)")
    generate.add_argument("--domain", type=int, default=10_000,
                          help="element domain size (default 10000)")
    generate.add_argument(
        "--distribution", default="uniform",
        choices=["uniform", "zipf", "selfsimilar", "normal", "clustered"],
        help="element-value distribution",
    )
    generate.add_argument(
        "--cardinality", default="uniform",
        choices=["constant", "uniform", "normal", "zipf", "bimodal"],
        help="set-cardinality distribution",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    database = commands.add_parser(
        "db", help="manage a persistent database of set relations"
    )
    database.add_argument("database", help="database file path")
    database.add_argument(
        "action",
        choices=["list", "load", "drop", "explain", "join", "verify",
                 "stats", "reshard"],
    )
    database.add_argument("args", nargs="*", help="action arguments")
    database.add_argument(
        "--shards", type=int, default=None,
        help="open (or create) the database as N shards behind the dist "
        "coordinator; an existing FILE.shards.json layout is detected "
        "automatically, so --shards is only needed on first creation",
    )
    database.add_argument(
        "--serve", action="store_true",
        help="expose /metrics and /healthz over HTTP while (and after) "
        "the action runs; Ctrl-C to stop",
    )
    database.add_argument("--host", "--bind", dest="host",
                          default="127.0.0.1",
                          help="bind interface for --serve (default "
                          "loopback; 0.0.0.0 = all interfaces)")
    database.add_argument("--port", type=int, default=9464,
                          help="bind port for --serve (0 = ephemeral)")
    database.add_argument("--token", default=None,
                          help="require 'Authorization: Bearer TOKEN' on "
                          "/metrics (/healthz stays open)")
    database.set_defaults(handler=_cmd_db)

    serve = commands.add_parser(
        "serve",
        help="serve process metrics over HTTP, or (with --service) the "
        "full query service",
    )
    serve.add_argument("--host", "--bind", dest="host", default="127.0.0.1",
                       help="bind interface (default loopback; 0.0.0.0 = "
                       "all interfaces)")
    serve.add_argument("--port", type=int, default=9464,
                       help="bind port (default 9464; 0 = ephemeral)")
    serve.add_argument("--token", default=None,
                       help="require 'Authorization: Bearer TOKEN' on "
                       "/metrics (/healthz stays open)")
    serve.add_argument("--service", metavar="DATABASE", default=None,
                       help="serve the query service over this database "
                       "file (POST /join, /probe; GET /readyz)")
    serve.add_argument("--workers", type=int, default=2,
                       help="parallel workers per join (default 2)")
    serve.add_argument("--backend", default="thread",
                       choices=("serial", "thread", "process"),
                       help="preferred execution backend; the circuit "
                       "breaker degrades it when it keeps failing")
    serve.add_argument("--shards", type=int, default=None,
                       help="with --service: open the database as N "
                       "shards behind the dist coordinator")
    serve.add_argument("--plan-cache-size", type=int, default=0,
                       help="cache up to N optimizer plans keyed on "
                       "relation-statistics fingerprints (default 0 = "
                       "replan every join)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue depth; beyond this, queries "
                       "are shed with HTTP 429 (default 64)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-query deadline in seconds "
                       "(default: none)")
    serve.add_argument("--drift", metavar="JSONL", default=None,
                       help="record per-join drift to this JSONL file "
                       "(rotated/compacted on startup)")
    serve.add_argument("--recalibrate-every", type=int, default=None,
                       help="with --drift and --model-store: attempt a "
                       "model refit every N joins")
    serve.add_argument("--model-store", metavar="JSON", default=None,
                       help="versioned time-model store for the "
                       "recalibration loop")
    serve.add_argument("--flight-recorder", metavar="N", type=int,
                       default=None,
                       help="with --service: keep the last N finished "
                       "queries (timeline, plan, span tree) queryable at "
                       "GET /debug/queries and /debug/query/<id>")
    serve.add_argument("--postmortems", metavar="DIR", default=None,
                       help="with --service: dump a postmortem JSON into "
                       "DIR for every failed or objective-breaching query "
                       "(implies --flight-recorder 128)")
    serve.add_argument("--slo-join", metavar="SECONDS", type=float,
                       default=None,
                       help="with --service: latency objective for join "
                       "queries; outcomes feed setjoin_slo_join_* burn-rate "
                       "gauges on /metrics")
    serve.add_argument("--slo-probe", metavar="SECONDS", type=float,
                       default=None,
                       help="with --service: latency objective for probe "
                       "queries")
    serve.add_argument("--profile-hz", metavar="HZ", type=float,
                       default=None,
                       help="with --service: run the stack-sampling "
                       "profiler at HZ and expose GET /debug/profile")
    serve.add_argument("--trace", metavar="JSONL", default=None,
                       help="append per-query span traces to this JSONL "
                       "file")
    serve.add_argument("--capture", metavar="JSONL", default=None,
                       help="with --service: append one fingerprinted "
                       "workload record per finished query (resolved "
                       "plan, resource ledger, answer digest) to this "
                       "JSONL file for 'setjoins replay'; rotated on "
                       "startup")
    serve.set_defaults(handler=_cmd_serve)

    workload = commands.add_parser(
        "workload",
        help="aggregate a workload capture into the heavy-hitter report",
    )
    workload.add_argument("capture", help="capture JSONL from serve --capture")
    workload.add_argument("--top", type=int, default=5,
                          help="fingerprints per ordering (default 5)")
    workload.add_argument("--json", action="store_true",
                          help="emit the full report as JSON")
    workload.set_defaults(handler=_cmd_workload)

    replay = commands.add_parser(
        "replay",
        help="re-execute a workload capture against a database and diff "
        "answers and deterministic resources per query",
    )
    replay.add_argument("capture", help="capture JSONL from serve --capture")
    replay.add_argument("database", help="database file path")
    replay.add_argument(
        "--shards", type=int, default=None,
        help="open the database as N shards behind the dist coordinator; "
        "an existing FILE.shards.json layout is detected automatically",
    )
    replay.add_argument("--workers", type=int, default=1,
                        help="parallel workers per replayed join "
                        "(default 1; answers must match regardless)")
    replay.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process"),
                        help="execution backend when --workers > 1")
    replay.add_argument("--json", action="store_true",
                        help="emit the replay report as JSON")
    replay.set_defaults(handler=_cmd_replay)

    ablate = commands.add_parser(
        "ablate",
        help="run the component-importance ablation matrix "
        "(baseline plus one component off per run)",
    )
    ablate.add_argument(
        "--component", action="append", metavar="NAME",
        help="ablate only this component (repeatable; default: full "
        "matrix of every registered component)",
    )
    ablate.add_argument("--list", action="store_true",
                        help="list registered components and exit")
    ablate.add_argument("--scale", type=float, default=1.0,
                        help="bench-suite size scale (default 1.0; must "
                        "match a committed report for --check)")
    ablate.add_argument("--seed", type=int, default=11,
                        help="bench-suite seed (default 11)")
    ablate.add_argument("--repeats", type=int, default=2,
                        help="executions per workload per run (default 2; "
                        ">= 2 makes the plan cache observable)")
    ablate.add_argument("--out", metavar="DIR", default="results",
                        help="write ablation_importance.tsv/.jsonl here "
                        "(default results/; '' disables)")
    ablate.add_argument("--check", metavar="TSV", default=None,
                        help="diff importance against this committed "
                        "report; exit 1 on rank collapse or "
                        "answer-exactness violation")
    ablate.add_argument("--history", metavar="PATH", default=None,
                        help="append one ablation row to this "
                        "BENCH_history.jsonl-style file")
    ablate.add_argument("--json", action="store_true",
                        help="emit the full report as JSON on stdout")
    ablate.set_defaults(handler=_cmd_ablate)

    stats = commands.add_parser("stats", help="summarize set files")
    stats.add_argument("files", nargs="+", help="one or two set files")
    stats.add_argument("--sample", type=int, default=None,
                       help="sample size for statistics (default: exact)")
    stats.set_defaults(handler=_cmd_stats)

    demo = commands.add_parser("demo", help="the Section 2 worked example")
    demo.set_defaults(handler=_cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        return arguments.handler(arguments)
    except SetJoinError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that exited; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
