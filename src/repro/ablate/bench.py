"""The ablation bench suite: one knob dict in, one outcome record out.

Every matrix run executes the same two-workload recipe (``canonical-v1``,
mirroring the shapes in ``benchmarks/baseline.py``) against a throwaway
file-backed :class:`~repro.database.SetJoinDatabase` assembled from the
run's knobs:

* ``auto_mixed`` — the optimizer picks the plan from sampled statistics,
  through a real :class:`~repro.service.core.PlanCache` when the
  ``plan-cache`` knob is on and with a *seeded* synthetic drift history
  (as if DCJ had been observed 3x slower than its prediction) when
  ``drift-corrections`` is on, so both decision paths are exercised
  deterministically.
* ``dcj_forced`` — DCJ at k=16 with the partitioner built directly from
  the partitioning knobs (hash-family construction, firing-probability
  scale on the optimal bit-string length b, α/β alternation pattern), so
  those components' deltas are isolated from optimizer choices.

Each workload repeats ``repeats`` times (that is what makes the plan
cache observable) and must produce bit-identical pairs on every repeat —
any divergence raises instead of silently polluting the importance
report.  The outcome carries the paper's x/y totals, per-workload pairs
digests, the plan-phase page I/O measured off ``disk.stats`` (planning
samples statistics *outside* the metrics registry, so the executor's
registry delta would miss it), and the
:func:`~repro.obs.ledger.query_fingerprint` workload shapes used to tag
runs for slicing.

Everything registry-visible the suite does — relation loads (WAL
traffic), joins (``record_join``), plan-cache hits/misses — happens
inside the executor's snapshot window, which is what makes the workload
ledger's :meth:`~repro.obs.ledger.WorkloadLedger.reconcile` hold exactly
over a whole matrix.
"""

from __future__ import annotations

import hashlib
import os
import tempfile

from ..errors import SetJoinError
from ..obs.ledger import query_fingerprint

__all__ = ["DCJ_FORCED_K", "SYNTHETIC_DRIFT", "suite_fingerprint", "run_bench"]

#: Partition count for the forced-DCJ workload (levels = log2 k = 4).
DCJ_FORCED_K = 16

#: The seeded drift history the drift-corrections knob applies: a fixed
#: "DCJ ran 3x slower than predicted" correction, large enough to flip
#: the optimizer's DCJ/PSJ choice on the canonical workload — the flip
#: is the component's measurable importance.
SYNTHETIC_DRIFT = {"DCJ": 3.0, "PSJ": 1.0}


def _workload_shape(scale: float, seed: int) -> dict:
    """The canonical input shape (same constants as benchmarks/baseline)."""
    return {
        "r_size": max(int(240 * scale), 20),
        "s_size": max(int(360 * scale), 30),
        "theta_r": 4,
        "theta_s": 24,
        "domain_size": 150,
        "seed": seed,
    }


def suite_fingerprint(scale: float, seed: int, suite: str = "canonical-v1"):
    """The workload-shape fingerprint every run at this scale/seed shares.

    Deliberately knob-free: runs are tagged by what work they did, not
    how the system was configured, so importance reports slice by
    workload shape exactly like ``GET /debug/workload`` does.
    """
    shape = _workload_shape(scale, seed)
    return query_fingerprint("ablation", dict(shape, suite=suite))


def _pairs_digest(pairs) -> str:
    body = ";".join(f"{r},{s}" for r, s in sorted(pairs))
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def _forced_partitioner(knobs: dict, theta_r: float, theta_s: float):
    """Build the forced-DCJ partitioner straight from the knobs."""
    import math

    from ..core.dcj import DCJPartitioner
    from ..core.hashing import (
        BitstringHashFamily,
        make_family,
        optimal_bitstring_length,
    )

    levels = int(math.log2(DCJ_FORCED_K))
    if knobs["family_kind"] == "bitstring":
        optimal = optimal_bitstring_length(theta_r, theta_s)
        length = max(levels, round(optimal * knobs["firing_scale"]))
        family = BitstringHashFamily(length, num_functions=levels)
    else:
        # firing_scale only detunes the bit-string construction; the
        # matrix never combines the two knobs (one-component-off).
        family = make_family(knobs["family_kind"], levels, theta_r, theta_s)
    return DCJPartitioner(family, levels, pattern=knobs["pattern"])


def run_bench(knobs: dict, scale: float = 1.0, seed: int = 11,
              repeats: int = 2) -> dict:
    """Execute the canonical suite under one knob dict; returns the
    outcome record (deterministic fields only — the executor owns
    timing and registry accounting)."""
    from ..data.workloads import uniform_workload
    from ..database import SetJoinDatabase
    from ..service.core import PlanCache

    shape = _workload_shape(scale, seed)
    lhs, rhs = uniform_workload(**shape).materialize()
    drift = SYNTHETIC_DRIFT if knobs["drift_corrections"] else None
    plan_cache = PlanCache(8) if knobs["plan_cache"] else None

    extras = {"plans": 0, "plan_pages": 0}
    workloads: dict = {}

    with tempfile.TemporaryDirectory(prefix="setjoins-ablate-") as tmp:
        path = os.path.join(tmp, "ablate.db")
        with SetJoinDatabase.open(
            path,
            buffer_pages=knobs["buffer_pages"],
            buffer_policy=knobs["buffer_policy"],
            durable=knobs["durable"],
            verify_checksums=knobs["verify_checksums"],
        ) as db:
            db.create_relation("ablate_r", lhs)
            db.create_relation("ablate_s", rhs)

            def plan_auto():
                """One optimizer pass, page traffic billed to ``extras``.

                Statistics scans are usually buffer-pool hits (the load
                just wrote those pages), so plan cost is counted as pool
                accesses (hits+misses), not physical disk reads.
                """
                key = ("ablate_r", "ablate_s", bool(drift))
                if plan_cache is not None:
                    cached = plan_cache.lookup(key)
                    if cached is not None:
                        return cached
                before = db.pool.stats.hits + db.pool.stats.misses
                plan = db.plan("ablate_r", "ablate_s", drift_history=drift)
                extras["plans"] += 1
                extras["plan_pages"] += (
                    db.pool.stats.hits + db.pool.stats.misses - before
                )
                if plan_cache is not None:
                    plan_cache.store(key, plan)
                return plan

            def execute(name, partitioner_for_repeat):
                record = None
                for __ in range(repeats):
                    pairs, metrics = db.join(
                        "ablate_r", "ablate_s",
                        partitioner=partitioner_for_repeat(),
                        workers=knobs["workers"],
                        backend=knobs["backend"],
                        seed=seed,
                    )
                    digest = _pairs_digest(pairs)
                    if record is not None and digest != record["pairs_digest"]:
                        raise SetJoinError(
                            f"ablation workload {name!r} is nondeterministic "
                            f"across repeats ({digest} != "
                            f"{record['pairs_digest']})"
                        )
                    record = {
                        "algorithm": metrics.algorithm,
                        "k": metrics.num_partitions,
                        "x": metrics.signature_comparisons,
                        "y": metrics.replicated_signatures,
                        "results": len(pairs),
                        "pairs_digest": digest,
                    }
                fp = query_fingerprint(
                    "ablation", dict(shape, suite=f"canonical-v1/{name}"))
                record["fingerprint"] = fp.key
                workloads[name] = record

            execute("auto_mixed",
                    lambda: plan_auto().build_partitioner(seed=seed))
            execute("dcj_forced",
                    lambda: _forced_partitioner(
                        knobs, shape["theta_r"], shape["theta_s"]))

    combined = hashlib.sha256(
        ":".join(workloads[name]["pairs_digest"]
                 for name in sorted(workloads)).encode()
    ).hexdigest()[:16]
    suite_fp = suite_fingerprint(scale, seed)
    return {
        "suite": "canonical-v1",
        "repeats": repeats,
        "workloads": workloads,
        "x": sum(w["x"] for w in workloads.values()),
        "y": sum(w["y"] for w in workloads.values()),
        "results": sum(w["results"] for w in workloads.values()),
        "pairs_digest": combined,
        "extras": dict(extras),
        "fingerprint": suite_fp.key,
        "label": suite_fp.label,
    }
