"""Declarative ablation harness: which component earns its cost?

The system is a stack of separable design choices — the paper's
(α/β alternation, optimal firing probability, hash-family construction)
and the repo's own (WAL, checksums, buffer pool, drift corrections,
plan cache, parallel backends).  This package measures each one's
importance by turning it off alone and diffing the result against a
common baseline:

* :mod:`~repro.ablate.registry` — the component registry: name, layer,
  knob overrides per variant, and the invariance class (``answer-exact``
  vs ``answer-affecting``) the harness enforces.
* :mod:`~repro.ablate.matrix` — baseline-plus-one-off run matrix with
  stable content-hashed run IDs.
* :mod:`~repro.ablate.bench` — the canonical two-workload suite every
  configuration executes.
* :mod:`~repro.ablate.executor` — runs the matrix under metrics-registry
  snapshot/delta billing (PR 9's ledger) with exact reconciliation.
* :mod:`~repro.ablate.score` — importance ranking, the committed
  TSV/JSONL report formats, and the CI tripwire.

Entry points: ``repro ablate`` (CLI), ``make ablations``, and the
``ablation-importance`` CI job.  See ``docs/ablation.md``.
"""

from .bench import run_bench, suite_fingerprint
from .executor import execute_matrix, execute_run
from .matrix import ABLATE_SCHEMA, SUITE, RunSpec, build_matrix, run_id_for
from .registry import (
    ANSWER_AFFECTING,
    ANSWER_EXACT,
    BASELINE_KNOBS,
    Component,
    all_components,
    get_component,
    register_component,
)
from .score import (
    check_importance,
    parse_importance_tsv,
    render_importance_tsv,
    score_runs,
)

__all__ = [
    "ABLATE_SCHEMA",
    "ANSWER_AFFECTING",
    "ANSWER_EXACT",
    "BASELINE_KNOBS",
    "Component",
    "RunSpec",
    "SUITE",
    "all_components",
    "build_matrix",
    "check_importance",
    "execute_matrix",
    "execute_run",
    "get_component",
    "parse_importance_tsv",
    "register_component",
    "render_importance_tsv",
    "run_bench",
    "run_id_for",
    "score_runs",
    "suite_fingerprint",
]
