"""Declarative component registry for the ablation harness.

Every separable design choice in the system — the paper's (alternation
heuristic, optimal firing probability, hash-family construction) and the
repo's own (WAL, checksums, buffer policy and size, drift corrections,
plan cache, parallel backend) — registers here as a :class:`Component`:
a name, the layer it lives in, the knob it toggles, one or more ablated
variants, and an **invariance class**:

* ``answer-exact`` — turning the component off must not change the join
  answer *or* the paper's x/y accounting.  The harness pins pairs, x and
  y bit-identical against the baseline run; any drift fails the CI
  tripwire.  (Storage/engine components: checksums, WAL, buffer pool,
  plan cache, parallel backend.)
* ``answer-affecting`` — the component legitimately changes the physical
  plan, so x/y may move (that movement *is* its importance), but the
  join answer itself is still unique: pairs must stay bit-identical.
  (Partitioning components: hash family, firing probability,
  alternation, drift corrections.)

Components toggle through :data:`BASELINE_KNOBS` — a flat dict of knob
name → baseline value that :mod:`repro.ablate.bench` interprets when
assembling a run.  A variant is just a partial override of that dict, so
registering a new component is one :func:`register_component` call; the
matrix generator, executor, scorer, CLI and CI tripwire pick it up with
no further wiring (see ``docs/ablation.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = [
    "ANSWER_AFFECTING",
    "ANSWER_EXACT",
    "BASELINE_KNOBS",
    "Component",
    "all_components",
    "get_component",
    "register_component",
]

ANSWER_EXACT = "answer-exact"
ANSWER_AFFECTING = "answer-affecting"

_INVARIANCE_CLASSES = (ANSWER_EXACT, ANSWER_AFFECTING)

#: The baseline configuration every ablation run is a one-knob deviation
#: from.  Values must be plain JSON data — run IDs hash them.
BASELINE_KNOBS: dict = {
    # storage
    "durable": True,            # WAL-wrapped disk manager
    "verify_checksums": True,   # CRC check on every page read
    "buffer_pages": 128,        # buffer-pool capacity (frames)
    "buffer_policy": "lru",     # replacement policy
    # partitioning (the paper's knobs)
    "family_kind": "bitstring", # monotone hash-family construction
    "firing_scale": 1.0,        # multiplier on the optimal bit-string length b
    "pattern": "alternating",   # α/β operator alternation
    # optimizer / service
    "drift_corrections": True,  # drift-aware cost corrections during planning
    "plan_cache": True,         # reuse plans across repeat executions
    # engine
    "workers": 2,               # partition-parallel workers
    "backend": "thread",        # parallel backend
}


@dataclass(frozen=True)
class Component:
    """One registered, ablatable design choice.

    ``variants`` maps a variant name to the knob overrides that disable
    or perturb the component; the scorer reports the max-impact variant.
    """

    name: str
    layer: str
    description: str
    invariance: str
    variants: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.invariance not in _INVARIANCE_CLASSES:
            raise ConfigurationError(
                f"component {self.name!r}: invariance must be one of "
                f"{_INVARIANCE_CLASSES}, got {self.invariance!r}"
            )
        if not self.variants:
            raise ConfigurationError(
                f"component {self.name!r} registers no variants"
            )
        for variant, overrides in self.variants.items():
            unknown = set(overrides) - set(BASELINE_KNOBS)
            if unknown:
                raise ConfigurationError(
                    f"component {self.name!r} variant {variant!r} overrides "
                    f"unknown knobs {sorted(unknown)}"
                )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "layer": self.layer,
            "description": self.description,
            "invariance": self.invariance,
            "variants": {name: dict(ov) for name, ov in self.variants.items()},
        }


_COMPONENTS: dict[str, Component] = {}


def register_component(component: Component) -> Component:
    """Add one component to the registry (idempotent re-registration of
    an identical definition is allowed; conflicting names are not)."""
    existing = _COMPONENTS.get(component.name)
    if existing is not None and existing != component:
        raise ConfigurationError(
            f"component {component.name!r} already registered with a "
            "different definition"
        )
    _COMPONENTS[component.name] = component
    return component


def get_component(name: str) -> Component:
    component = _COMPONENTS.get(name)
    if component is None:
        known = ", ".join(sorted(_COMPONENTS))
        raise ConfigurationError(
            f"unknown ablation component {name!r}; registered: {known}"
        )
    return component


def all_components() -> list[Component]:
    """Every registered component, name-sorted (stable matrix order)."""
    return [_COMPONENTS[name] for name in sorted(_COMPONENTS)]


# ---------------------------------------------------------------------------
# Built-in components.  Layer names mirror the package layout.
# ---------------------------------------------------------------------------

register_component(Component(
    name="checksums",
    layer="storage",
    description="CRC32 verification on every page read (PR 1); off skips "
    "the check so torn writes and bit rot decode as garbage",
    invariance=ANSWER_EXACT,
    variants={"off": {"verify_checksums": False}},
))

register_component(Component(
    name="wal",
    layer="storage",
    description="write-ahead logging of catalog-changing transactions "
    "(PR 1); off reverts to best-effort mutate-then-flush",
    invariance=ANSWER_EXACT,
    variants={"off": {"durable": False}},
))

register_component(Component(
    name="buffer-policy",
    layer="storage",
    description="buffer-pool replacement policy (paper §5 holds it "
    "constant; the pool also implements clock and fifo)",
    invariance=ANSWER_EXACT,
    variants={"clock": {"buffer_policy": "clock"},
              "fifo": {"buffer_policy": "fifo"}},
))

register_component(Component(
    name="buffer-size",
    layer="storage",
    description="buffer-pool capacity; tight pools evict partition pages "
    "mid-join and pay re-reads",
    invariance=ANSWER_EXACT,
    variants={"tight": {"buffer_pages": 16}},
))

register_component(Component(
    name="hash-family",
    layer="core",
    description="monotone hash-family construction: the paper's §3 "
    "bit-string family vs the [MGM01] disjoint-prime groups",
    invariance=ANSWER_AFFECTING,
    variants={"primes": {"family_kind": "primes"}},
))

register_component(Component(
    name="firing-probability",
    layer="core",
    description="optimal firing probability q* = λ/(1+λ) via the optimal "
    "bit-string length b (§3); variants detune b by 4x either way",
    invariance=ANSWER_AFFECTING,
    variants={"quarter-b": {"firing_scale": 0.25},
              "4x-b": {"firing_scale": 4.0}},
))

register_component(Component(
    name="alternation",
    layer="core",
    description="the §2.3 α/β operator alternation (split whichever side "
    "the previous step replicated) vs all-α or all-β trees",
    invariance=ANSWER_AFFECTING,
    variants={"alpha-only": {"pattern": "alpha"},
              "beta-only": {"pattern": "beta"}},
))

register_component(Component(
    name="drift-corrections",
    layer="optimizer",
    description="drift-aware plan costing (PR 5): observed/predicted "
    "correction ratios reweight DCJ vs PSJ during planning",
    invariance=ANSWER_AFFECTING,
    variants={"off": {"drift_corrections": False}},
))

register_component(Component(
    name="plan-cache",
    layer="service",
    description="statistics-fingerprint plan cache (PR 7): repeat "
    "executions reuse the plan instead of re-sampling and re-costing",
    invariance=ANSWER_EXACT,
    variants={"off": {"plan_cache": False}},
))

register_component(Component(
    name="parallel-backend",
    layer="engine",
    description="partition-parallel execution (PR 2); results and x/y "
    "are pinned backend-identical, so its importance is wall time",
    invariance=ANSWER_EXACT,
    variants={"serial": {"workers": 1, "backend": "serial"}},
))
