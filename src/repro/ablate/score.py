"""Importance scoring, report rendering, and the CI tripwire.

A component's **importance** is how much the system changes when it is
turned off — measured as signed relative deltas of each ablated run
against the baseline run, over:

* the deterministic axes — signature comparisons x, replicated
  signatures y, page I/O (reads+writes), WAL bytes, and plan-phase page
  I/O — whose maximum absolute value is ``importance_det``; and
* wall time, which folds into the broader ``importance`` score.

Components are **ranked by importance_det** (tie-broken by name): the
deterministic axes are bit-identical across machines, so the committed
ranking is stable and diffable, while wall time — which varies per host
— is reported but never decides rank.  A component with several variants
is represented by its max-impact variant.

Answer invariants are checked per variant against the baseline run:
every run's pairs digest must match (the containment join's answer is
unique regardless of configuration), and ``answer-exact`` components
must additionally pin x and y bit-identical.

:func:`check_importance` is the tripwire ``repro ablate --check`` and
the CI ``ablation-importance`` job gate on.  Against a committed
:func:`render_importance_tsv` report it fails when:

* any fresh run violates its answer invariant;
* the fresh baseline's x/y differ from the committed baseline's (the
  suite's determinism itself broke);
* a committed component is missing from a fresh full-matrix run; or
* a component's importance **collapses** — committed ``importance_det``
  was significant (>= 2%) but the fresh value fell below a quarter of
  it, meaning the component stopped doing measurable work: dead weight
  or a silently-disabled code path.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .matrix import ABLATE_SCHEMA, SUITE

__all__ = [
    "COLLAPSE_RATIO",
    "SIGNIFICANT_IMPORTANCE",
    "check_importance",
    "parse_importance_tsv",
    "render_importance_tsv",
    "score_runs",
]

#: Committed importance_det below this is noise; collapse is not gated.
SIGNIFICANT_IMPORTANCE = 0.02

#: Fresh importance_det under this fraction of committed is a collapse.
COLLAPSE_RATIO = 0.25

#: The deterministic delta axes: row field -> how to read it from a run.
_DET_AXES = ("x", "y", "pages", "wal_bytes", "plan_pages")

_TSV_COLUMNS = (
    "rank", "component", "layer", "invariance", "variant",
    "importance_det", "importance", "d_wall", "d_x", "d_y", "d_pages",
    "d_wal_bytes", "d_plan_pages", "answer_ok", "run_id",
)


def _axes(row: dict) -> dict:
    resources = row.get("resources", {})
    extras = row.get("extras", {})
    return {
        "x": row.get("x", 0),
        "y": row.get("y", 0),
        "pages": (resources.get("pages_read", 0)
                  + resources.get("pages_written", 0)),
        "wal_bytes": resources.get("wal_bytes", 0),
        "plan_pages": extras.get("plan_pages", 0),
        "wall": row.get("wall_seconds", 0.0),
    }


def _rel(value, base) -> float:
    return (value - base) / max(base, 1e-12)


def score_runs(runs: list[dict]) -> dict:
    """Rank components from a matrix's run rows.

    ``runs`` must contain exactly one baseline row (``component`` None);
    every other row is one component variant.
    """
    baseline_rows = [row for row in runs if row.get("component") is None]
    if len(baseline_rows) != 1:
        raise ConfigurationError(
            f"expected exactly one baseline run, got {len(baseline_rows)}"
        )
    baseline = baseline_rows[0]
    base = _axes(baseline)

    variants: dict[str, list[dict]] = {}
    for row in runs:
        if row.get("component") is None:
            continue
        axes = _axes(row)
        deltas = {name: _rel(axes[name], base[name]) for name in _DET_AXES}
        deltas["wall"] = _rel(axes["wall"], base["wall"])
        importance_det = max(abs(deltas[name]) for name in _DET_AXES)
        violations = []
        if row.get("pairs_digest") != baseline.get("pairs_digest"):
            violations.append(
                "pairs digest diverged from baseline "
                f"({row.get('pairs_digest')} != {baseline.get('pairs_digest')})"
            )
        if row.get("invariance") == "answer-exact":
            if row.get("x") != baseline.get("x"):
                violations.append(
                    f"x changed: {row.get('x')} != {baseline.get('x')}")
            if row.get("y") != baseline.get("y"):
                violations.append(
                    f"y changed: {row.get('y')} != {baseline.get('y')}")
        variants.setdefault(row["component"], []).append({
            "component": row["component"],
            "variant": row.get("variant"),
            "layer": row.get("layer"),
            "invariance": row.get("invariance"),
            "run_id": row.get("run_id"),
            "fingerprint": row.get("fingerprint"),
            "importance_det": importance_det,
            "importance": max(importance_det, abs(deltas["wall"])),
            "deltas": deltas,
            "answer_ok": not violations,
            "violations": violations,
        })

    components = []
    for name in sorted(variants):
        scored = sorted(
            variants[name],
            key=lambda v: (-v["importance_det"], -v["importance"],
                           v["variant"] or ""),
        )
        best = dict(scored[0])
        # An invariant violation on *any* variant taints the component.
        best["answer_ok"] = all(v["answer_ok"] for v in scored)
        best["violations"] = [
            violation for v in scored for violation in v["violations"]
        ]
        best["variants_run"] = len(scored)
        components.append(best)
    components.sort(key=lambda c: (-c["importance_det"], c["component"]))
    for rank, component in enumerate(components, start=1):
        component["rank"] = rank

    return {
        "schema": ABLATE_SCHEMA,
        "suite": SUITE,
        "scale": baseline.get("scale"),
        "seed": baseline.get("seed"),
        "baseline": {
            "run_id": baseline.get("run_id"),
            "x": base["x"],
            "y": base["y"],
            "pages": base["pages"],
            "wal_bytes": base["wal_bytes"],
            "plan_pages": base["plan_pages"],
            "wall_seconds": base["wall"],
            "pairs_digest": baseline.get("pairs_digest"),
            "fingerprint": baseline.get("fingerprint"),
        },
        "components": components,
    }


def render_importance_tsv(report: dict) -> str:
    """The committed ``results/ablation_importance.tsv`` format.

    Header comments carry the baseline absolutes the tripwire compares
    exactly; data rows carry one component each, rank order.
    """
    baseline = report["baseline"]
    lines = [
        "# ablation importance report",
        f"# schema={report['schema']} suite={report['suite']} "
        f"scale={report['scale']} seed={report['seed']}",
        f"# baseline run_id={baseline['run_id']} x={baseline['x']} "
        f"y={baseline['y']} pages={baseline['pages']} "
        f"wal_bytes={baseline['wal_bytes']} "
        f"plan_pages={baseline['plan_pages']} "
        f"pairs={baseline['pairs_digest']}",
        "\t".join(_TSV_COLUMNS),
    ]
    for component in report["components"]:
        deltas = component["deltas"]
        lines.append("\t".join(str(part) for part in (
            component["rank"],
            component["component"],
            component["layer"],
            component["invariance"],
            component["variant"],
            f"{component['importance_det']:.4f}",
            f"{component['importance']:.4f}",
            f"{deltas['wall']:+.4f}",
            f"{deltas['x']:+.4f}",
            f"{deltas['y']:+.4f}",
            f"{deltas['pages']:+.4f}",
            f"{deltas['wal_bytes']:+.4f}",
            f"{deltas['plan_pages']:+.4f}",
            "yes" if component["answer_ok"] else "NO",
            component["run_id"],
        )))
    return "\n".join(lines) + "\n"


def parse_importance_tsv(text: str) -> dict:
    """Parse a committed report back into baseline + per-component rows."""
    baseline: dict = {}
    meta: dict = {}
    components: dict[str, dict] = {}
    header: list[str] | None = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("# ")
            target = None
            if body.startswith("baseline "):
                target, body = baseline, body[len("baseline "):]
            elif body.startswith("schema="):
                target = meta
            if target is not None:
                for part in body.split():
                    if "=" in part:
                        key, value = part.split("=", 1)
                        try:
                            target[key] = int(value)
                        except ValueError:
                            try:
                                target[key] = float(value)
                            except ValueError:
                                target[key] = value
            continue
        cells = line.split("\t")
        if header is None:
            header = cells
            continue
        row = dict(zip(header, cells))
        row["importance_det"] = float(row["importance_det"])
        row["importance"] = float(row["importance"])
        row["rank"] = int(row["rank"])
        row["answer_ok"] = row["answer_ok"] == "yes"
        components[row["component"]] = row
    if header is None:
        raise ConfigurationError("importance TSV has no header row")
    return {"meta": meta, "baseline": baseline, "components": components}


def check_importance(fresh: dict, committed: dict,
                     full_matrix: bool = True) -> list[str]:
    """Diff a fresh report against a committed one; returns failures.

    ``fresh`` is :func:`score_runs` output; ``committed`` is
    :func:`parse_importance_tsv` output.  ``full_matrix=False`` (the
    ``--component`` filtered path) skips the missing-component check and
    only gates components present in both.
    """
    failures: list[str] = []
    for component in fresh["components"]:
        if not component["answer_ok"]:
            for violation in component["violations"]:
                failures.append(
                    f"{component['component']}: answer invariant violated: "
                    f"{violation}"
                )

    meta = committed.get("meta", {})
    compatible = (
        meta.get("schema") == fresh.get("schema")
        and meta.get("suite") == fresh.get("suite")
        and meta.get("scale") == fresh.get("scale")
        and meta.get("seed") == fresh.get("seed")
    )
    if not compatible:
        failures.append(
            "committed report configuration "
            f"(schema={meta.get('schema')} suite={meta.get('suite')} "
            f"scale={meta.get('scale')} seed={meta.get('seed')}) does not "
            f"match this run (schema={fresh.get('schema')} "
            f"suite={fresh.get('suite')} scale={fresh.get('scale')} "
            f"seed={fresh.get('seed')}); regenerate with make ablations"
        )
        return failures

    committed_baseline = committed.get("baseline", {})
    fresh_baseline = fresh["baseline"]
    for key in ("x", "y"):
        if committed_baseline.get(key) != fresh_baseline.get(key):
            failures.append(
                f"baseline {key} drifted: committed "
                f"{committed_baseline.get(key)}, fresh "
                f"{fresh_baseline.get(key)} — the suite's deterministic "
                "accounting changed"
            )

    fresh_by_name = {c["component"]: c for c in fresh["components"]}
    for name, committed_row in sorted(committed.get("components", {}).items()):
        fresh_row = fresh_by_name.get(name)
        if fresh_row is None:
            if full_matrix:
                failures.append(
                    f"{name}: in the committed report but missing from "
                    "this run (component unregistered?)"
                )
            continue
        committed_det = committed_row["importance_det"]
        if committed_det >= SIGNIFICANT_IMPORTANCE:
            threshold = committed_det * COLLAPSE_RATIO
            if fresh_row["importance_det"] < threshold:
                failures.append(
                    f"{name}: importance collapsed: committed "
                    f"importance_det={committed_det:.4f}, fresh "
                    f"{fresh_row['importance_det']:.4f} "
                    f"(< {COLLAPSE_RATIO:.0%} of committed) — the "
                    "component no longer does measurable work"
                )
    return failures
