"""Ablation run-matrix generation with stable content-hashed run IDs.

The matrix is *baseline plus one component off*: one run with every knob
at its :data:`~repro.ablate.registry.BASELINE_KNOBS` value, then one run
per registered component variant with exactly that variant's overrides
applied.  Importance is therefore always a clean single-knob diff.

Run IDs are content hashes over the canonical JSON of everything that
determines the run's outcome — schema version, bench-suite name, scale,
seed, and the fully resolved knob dict — so the same configuration gets
the same 12-hex ID in every process and on every machine (pinned by a
subprocess test), and any knob change produces a new ID.  IDs are how
reports line up across PRs: the CI tripwire compares importance by
component name, and run IDs tell it whether the underlying config moved.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from .registry import BASELINE_KNOBS, Component, all_components, get_component

__all__ = ["ABLATE_SCHEMA", "SUITE", "RunSpec", "build_matrix", "run_id_for"]

#: Bumped whenever the bench suite or knob semantics change incompatibly;
#: part of every run ID, so stale committed reports cannot line up.
ABLATE_SCHEMA = 1

#: Name of the bench-suite recipe in :mod:`repro.ablate.bench`.
SUITE = "canonical-v1"


@dataclass(frozen=True)
class RunSpec:
    """One fully resolved ablation run."""

    run_id: str
    component: str | None   # None for the baseline run
    variant: str | None
    layer: str
    invariance: str | None
    knobs: dict
    scale: float
    seed: int

    @property
    def name(self) -> str:
        if self.component is None:
            return "baseline"
        return f"{self.component}:{self.variant}"

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "name": self.name,
            "component": self.component,
            "variant": self.variant,
            "layer": self.layer,
            "invariance": self.invariance,
            "knobs": dict(self.knobs),
            "scale": self.scale,
            "seed": self.seed,
        }


def run_id_for(knobs: dict, scale: float, seed: int,
               suite: str = SUITE) -> str:
    """The stable 12-hex content hash of one run configuration."""
    canonical = json.dumps(
        {
            "schema": ABLATE_SCHEMA,
            "suite": suite,
            "scale": scale,
            "seed": seed,
            "knobs": knobs,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def _spec(component: Component | None, variant: str | None,
          overrides: dict, scale: float, seed: int) -> RunSpec:
    knobs = dict(BASELINE_KNOBS)
    knobs.update(overrides)
    return RunSpec(
        run_id=run_id_for(knobs, scale, seed),
        component=component.name if component is not None else None,
        variant=variant,
        layer=component.layer if component is not None else "baseline",
        invariance=component.invariance if component is not None else None,
        knobs=knobs,
        scale=scale,
        seed=seed,
    )


def build_matrix(components: list[str] | None = None,
                 scale: float = 1.0, seed: int = 11) -> list[RunSpec]:
    """The baseline run plus one run per component variant.

    ``components`` filters to a named subset (the ``repro ablate
    --component`` path); the baseline run is always included because
    every importance score is a delta against it.
    """
    if components is None:
        selected = all_components()
    else:
        selected = [get_component(name) for name in components]
    specs = [_spec(None, None, {}, scale, seed)]
    for component in selected:
        for variant in sorted(component.variants):
            specs.append(_spec(component, variant,
                               component.variants[variant], scale, seed))
    return specs
