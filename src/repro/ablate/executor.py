"""Matrix executor: run every configuration under exact resource billing.

Each :class:`~repro.ablate.matrix.RunSpec` executes through
:func:`~repro.ablate.bench.run_bench` inside a metrics-registry
snapshot/delta window — the same mechanism the query service bills
individual queries with (PR 9) — so a run's bill is the *exact* counter
movement it caused: page I/O, buffer hits/misses, WAL traffic,
signature comparisons, plan-cache hits/misses.  Runs are attributed to a
:class:`~repro.obs.ledger.WorkloadLedger` keyed by the suite's workload
fingerprint, and the matrix result carries the ledger's reconciliation:
``exact`` must be True — any unattributed counter movement means some
code path did storage work outside a run window, which is a harness bug
the tests pin against.

Clocks are injected (``clock``/``cpu_clock``), never read via
``time.time()``: the CI clock lint covers this module like the rest of
the library.
"""

from __future__ import annotations

import time

from ..obs.ledger import Fingerprint, QueryLedger, WorkloadLedger
from ..obs.registry import get_registry
from .bench import run_bench
from .matrix import RunSpec

__all__ = ["execute_matrix", "execute_run"]


def execute_run(spec: RunSpec, registry=None, repeats: int = 2,
                clock=None, cpu_clock=None) -> dict:
    """Execute one configuration; returns its full run row.

    The row is everything downstream consumers need: identity (run ID,
    component/variant/invariance, knobs), the deterministic outcome
    (x/y, pairs digests, plan-phase extras), the exact resource bill,
    and the workload fingerprint tag.
    """
    registry = registry if registry is not None else get_registry()
    clock = clock if clock is not None else time.perf_counter
    cpu_clock = cpu_clock if cpu_clock is not None else time.process_time
    baseline = registry.snapshot()
    wall_started = clock()
    cpu_started = cpu_clock()
    outcome = run_bench(spec.knobs, scale=spec.scale, seed=spec.seed,
                        repeats=repeats)
    wall = clock() - wall_started
    cpu = cpu_clock() - cpu_started
    ledger = QueryLedger.from_delta(registry.delta(baseline), wall, cpu)
    row = spec.to_dict()
    row.update(outcome)
    row["wall_seconds"] = wall
    row["cpu_seconds"] = cpu
    row["resources"] = ledger.resources
    row["_ledger"] = ledger  # stripped before serialization
    return row


def execute_matrix(specs: list[RunSpec], registry=None, repeats: int = 2,
                   clock=None, cpu_clock=None, progress=None,
                   warmup: bool = True) -> dict:
    """Execute a whole matrix; returns runs plus the reconciliation.

    ``progress`` (an optional callable taking the finished row) lets the
    CLI stream per-run lines without this module printing anything.
    ``warmup`` runs the first configuration once, unbilled, before the
    ledger window opens — the matrix's first run would otherwise pay
    one-time import/JIT warm-up and skew every wall-time delta against
    the baseline.
    """
    registry = registry if registry is not None else get_registry()
    if warmup and specs:
        run_bench(specs[0].knobs, scale=specs[0].scale,
                  seed=specs[0].seed, repeats=1)
    workload_ledger = WorkloadLedger(registry=registry)
    workload_ledger.begin()
    rows: list[dict] = []
    for spec in specs:
        row = execute_run(spec, registry=registry, repeats=repeats,
                          clock=clock, cpu_clock=cpu_clock)
        ledger = row.pop("_ledger")
        workload_ledger.attribute(
            Fingerprint(key=row["fingerprint"], label=row["label"],
                        detail={}),
            ledger,
            kind="ablation",
            status="ok",
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    return {
        "runs": rows,
        "reconciliation": workload_ledger.reconcile(),
        "workload_report": workload_ledger.report(top=3),
    }
