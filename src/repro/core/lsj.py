"""Lattice Set Join (LSJ) — the disk-based extension of SHJ [HM97].

LSJ uses the same ``l`` monotone boolean hash functions as DCJ but a
simpler partition layout: partitions are indexed by the boolean vector
``h_1(x) h_2(x) ... h_l(x)``.

* Each R-tuple goes to exactly **one** partition: its own hash vector.
* Each S-tuple goes to its hash vector's partition **and to every
  partition whose index is bitwise included in it** — the partitions
  logically form a power lattice over the fired functions.

Correctness: if ``r ⊆ s`` then monotonicity gives ``mask(r) ⊆ᵇ mask(s)``,
so ``r``'s partition is one of the submasks ``s`` is replicated to.

LSJ has the same comparison factor as DCJ (each pair of tuples meets in at
most one partition, with the same probability), but replicates each S-tuple
``2^{#fired}`` times, which is why the paper proves DCJ always beats it on
the replication factor.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .hashing import BooleanHashFamily, make_family
from .partitioning import Partitioner

__all__ = ["LSJPartitioner", "submasks"]


def submasks(mask: int) -> list[int]:
    """All bitwise submasks of ``mask`` (including 0 and itself), ascending."""
    result = []
    sub = mask
    while True:
        result.append(sub)
        if sub == 0:
            break
        sub = (sub - 1) & mask
    result.reverse()
    return result


class LSJPartitioner(Partitioner):
    """LSJ configured with ``l`` hash functions for ``k = 2^l`` partitions."""

    name = "LSJ"

    def __init__(self, family: BooleanHashFamily, num_levels: int | None = None):
        levels = num_levels if num_levels is not None else family.num_functions
        if levels < 1:
            raise ConfigurationError("LSJ needs at least one hash function")
        if levels > family.num_functions:
            raise ConfigurationError(
                f"{levels} levels requested but family has only "
                f"{family.num_functions} functions"
            )
        super().__init__(2**levels)
        self.family = family
        self.num_levels = levels
        self._mask_all = (1 << levels) - 1

    @classmethod
    def for_cardinalities(
        cls,
        num_partitions: int,
        theta_r: float,
        theta_s: float,
        family_kind: str = "bitstring",
    ) -> "LSJPartitioner":
        """Build LSJ with an optimally tuned hash family (power-of-two k)."""
        if num_partitions < 2 or num_partitions & (num_partitions - 1):
            raise ConfigurationError(
                f"LSJ requires a power-of-two partition count >= 2, "
                f"got {num_partitions}"
            )
        levels = num_partitions.bit_length() - 1
        family = make_family(family_kind, levels, theta_r, theta_s)
        return cls(family, levels)

    def _vector(self, elements: frozenset[int]) -> int:
        return self.family.evaluate(elements) & self._mask_all

    def assign_r(self, elements: frozenset[int]) -> list[int]:
        return [self._vector(elements)]

    def assign_s(self, elements: frozenset[int]) -> list[int]:
        return submasks(self._vector(elements))

    def describe(self) -> str:
        return f"LSJ(k={self.num_partitions}, levels={self.num_levels})"
