"""Set-valued tuples and in-memory relations.

A *relation with a set-valued attribute* is the paper's input object: each
tuple carries a tuple identifier (tid), a set of non-negative integers, and
(on disk) a fixed payload.  This module provides the lightweight in-memory
representation used by the algorithms, generators and analysis; the
disk-resident form lives in :mod:`repro.storage.relation_store`.

Non-integer element domains (strings, XML element names, course codes...)
are supported by hashing them onto integers first, exactly as the paper's
footnote suggests; see :func:`elements_from_values`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from ..errors import ConfigurationError

__all__ = [
    "SetTuple",
    "Relation",
    "hash_value_to_element",
    "elements_from_values",
    "containment_pairs_nested_loop",
]


def hash_value_to_element(value, domain_size: int = 2**32) -> int:
    """Map an arbitrary hashable value onto the integer element domain.

    Deterministic across processes (unlike builtin ``hash``), which keeps
    generated datasets and examples reproducible.
    """
    digest = hashlib.blake2b(repr(value).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % domain_size


def elements_from_values(values: Iterable, domain_size: int = 2**32) -> frozenset[int]:
    """Encode a set of arbitrary values as a set of integer elements."""
    return frozenset(hash_value_to_element(v, domain_size) for v in values)


@dataclass(frozen=True)
class SetTuple:
    """One tuple: identifier plus set-valued attribute."""

    tid: int
    elements: frozenset[int]

    def __post_init__(self):
        if self.tid < 0:
            raise ConfigurationError(f"tid must be non-negative, got {self.tid}")
        if not isinstance(self.elements, frozenset):
            object.__setattr__(self, "elements", frozenset(self.elements))

    @property
    def cardinality(self) -> int:
        return len(self.elements)

    def is_subset_of(self, other: "SetTuple") -> bool:
        """The join predicate: ``self.elements ⊆ other.elements``."""
        return self.elements <= other.elements


class Relation:
    """An ordered collection of :class:`SetTuple` with unique tids."""

    def __init__(self, tuples: Iterable[SetTuple] = (), name: str = ""):
        self.name = name
        self._tuples: list[SetTuple] = []
        self._by_tid: dict[int, SetTuple] = {}
        for row in tuples:
            self.add(row)

    @classmethod
    def from_sets(
        cls,
        sets: Iterable[Iterable[int]],
        name: str = "",
        start_tid: int = 0,
    ) -> "Relation":
        """Build a relation from raw sets, assigning sequential tids."""
        relation = cls(name=name)
        for offset, elements in enumerate(sets):
            relation.add(SetTuple(start_tid + offset, frozenset(elements)))
        return relation

    @classmethod
    def from_mapping(cls, mapping: Mapping, name: str = "") -> "Relation":
        """Build a relation from ``{tid: iterable_of_elements}``."""
        relation = cls(name=name)
        for tid in sorted(mapping):
            relation.add(SetTuple(tid, frozenset(mapping[tid])))
        return relation

    def add(self, row: SetTuple) -> None:
        if row.tid in self._by_tid:
            raise ConfigurationError(f"duplicate tid {row.tid} in relation {self.name!r}")
        self._tuples.append(row)
        self._by_tid[row.tid] = row

    def __iter__(self) -> Iterator[SetTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __getitem__(self, tid: int) -> SetTuple:
        return self._by_tid[tid]

    def __contains__(self, tid: int) -> bool:
        return tid in self._by_tid

    def tids(self) -> list[int]:
        return [row.tid for row in self._tuples]

    def average_cardinality(self) -> float:
        """Mean set cardinality (the paper's θ for this relation)."""
        if not self._tuples:
            return 0.0
        return sum(row.cardinality for row in self._tuples) / len(self._tuples)

    def max_cardinality(self) -> int:
        return max((row.cardinality for row in self._tuples), default=0)

    def domain_bound(self) -> int:
        """Smallest D such that all elements lie in [0, D)."""
        top = 0
        for row in self._tuples:
            if row.elements:
                top = max(top, max(row.elements))
        return top + 1

    def sample_cardinality(self, sample_size: int, seed: int = 0) -> float:
        """Estimate average cardinality from a sample, as the optimizer's
        step 2 ("using sampling or available statistics") prescribes."""
        import random

        if not self._tuples:
            return 0.0
        rng = random.Random(seed)
        size = min(sample_size, len(self._tuples))
        sample = rng.sample(self._tuples, size)
        return sum(row.cardinality for row in sample) / size


def containment_pairs_nested_loop(
    lhs: Relation, rhs: Relation
) -> set[tuple[int, int]]:
    """Reference result: all (r.tid, s.tid) with r ⊆ s, by brute force.

    Quadratic; used as ground truth in tests and tiny examples.
    """
    return {
        (r.tid, s.tid)
        for r in lhs
        for s in rhs
        if r.elements <= s.elements
    }
