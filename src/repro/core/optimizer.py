"""Algorithm and partition-count selection (the paper's Section 5 procedure).

Given two input relations and a calibrated time model, the optimizer
executes the paper's five steps verbatim:

1. determine the actual sizes of the relations;
2. determine the average set cardinalities θ_R and θ_S "using sampling or
   available statistics";
3. estimate the comparison and replication factors for DCJ and PSJ with
   the Table 7 formulas for k = 2^1 .. 2^13;
4. apply the time equation to those estimates;
5. pick the algorithm and k with the best predicted execution time.

The result carries the full candidate table so callers (and the
experiments) can inspect the prediction landscape, and
:meth:`JoinPlan.build_partitioner` turns the decision into a configured
partitioner ready to run.

**Drift-aware planning** (``drift_history=``): the paper fits c1/c2/c3
once on a test machine and trusts them forever; a long-lived
installation accumulates per-join predicted-vs-observed drift records
(:mod:`repro.obs.drift`) instead.  Passing that history (a record list,
a JSONL path, or a precomputed ``{algorithm: factor}`` mapping) makes
step 4 multiply each candidate algorithm's predicted time by its recent
mean observed/predicted wall-time ratio — shrunk toward 1.0 for thin
histories (:func:`repro.obs.adaptive.drift_corrections`) — before step 5
compares them.  Only the *comparison* changes: every candidate also
keeps its raw model prediction, and executing a plan is bit-identical
with corrections on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.factors import (
    comparison_factor,
    predict_quantities,
    replication_factor,
)
from ..analysis.timemodel import TimeModel
from ..errors import ConfigurationError
from .dcj import DCJPartitioner
from .lsj import LSJPartitioner
from .partitioning import Partitioner
from .psj import PSJPartitioner
from .sets import Relation

__all__ = [
    "CandidatePlan",
    "JoinPlan",
    "choose_plan",
    "plan_from_statistics",
    "resolve_drift_corrections",
]

DEFAULT_LEVELS = tuple(range(1, 14))  # k = 2^1 .. 2^13, as in the paper


@dataclass(frozen=True)
class CandidatePlan:
    """One (algorithm, k) candidate with its model estimates.

    ``predicted_seconds`` is what step 5 compares — the raw model
    prediction times the algorithm's ``drift_correction`` (1.0 without a
    drift history, in which case it equals ``raw_seconds``).
    """

    algorithm: str
    k: int
    comparison_factor: float
    replication_factor: float
    predicted_seconds: float
    raw_seconds: float = None  # uncorrected model prediction
    drift_correction: float = 1.0

    def __post_init__(self):
        if self.raw_seconds is None:
            object.__setattr__(self, "raw_seconds", self.predicted_seconds)


@dataclass
class JoinPlan:
    """The optimizer's decision plus the data that produced it."""

    algorithm: str
    k: int
    predicted_seconds: float
    theta_r: float
    theta_s: float
    r_size: int
    s_size: int
    candidates: list[CandidatePlan] = field(default_factory=list)
    #: per-algorithm wall-time correction factors applied during step 5
    #: (empty without a drift history).
    drift_corrections: dict = field(default_factory=dict)

    def explain(self, top: int = 5) -> str:
        """EXPLAIN-style text: the decision plus the best-k line per
        algorithm and the closest-contending candidates."""
        lines = [
            f"set containment join: |R|={self.r_size} (θ_R≈{self.theta_r:.1f})"
            f" ⋈⊆ |S|={self.s_size} (θ_S≈{self.theta_s:.1f})",
            f"chosen: {self.algorithm} with k={self.k} "
            f"(predicted {self.predicted_seconds:.3f}s)",
        ]
        if self.drift_corrections:
            lines.append(
                "  drift corrections: " + ", ".join(
                    f"{algorithm}×{factor:.3f}"
                    for algorithm, factor in sorted(
                        self.drift_corrections.items()
                    )
                )
            )
        per_algorithm: dict[str, CandidatePlan] = {}
        for candidate in self.candidates:
            best = per_algorithm.get(candidate.algorithm)
            if best is None or candidate.predicted_seconds < best.predicted_seconds:
                per_algorithm[candidate.algorithm] = candidate
        for algorithm, candidate in sorted(per_algorithm.items()):
            lines.append(
                f"  best {algorithm}: k={candidate.k}, "
                f"comp={candidate.comparison_factor:.4f}, "
                f"repl={candidate.replication_factor:.2f}, "
                f"predicted {candidate.predicted_seconds:.3f}s"
            )
        contenders = sorted(
            self.candidates, key=lambda plan: plan.predicted_seconds
        )[:top]
        lines.append("  closest candidates: " + ", ".join(
            f"{plan.algorithm}(k={plan.k}, {plan.predicted_seconds:.3f}s)"
            for plan in contenders
        ))
        return "\n".join(lines)

    def prediction(
        self, model: TimeModel, algorithm: str | None = None, k: int | None = None
    ) -> dict:
        """The analytical prediction behind one (algorithm, k) choice.

        Defaults to the chosen plan; pass ``algorithm``/``k`` to inspect
        a road not taken.  Returns the absolute model quantities (x, y),
        the underlying factors, and the predicted seconds split into the
        time formula's CPU and replication terms — exactly what EXPLAIN
        prints and what the drift layer later compares against observed
        values.
        """
        algorithm = algorithm if algorithm is not None else self.algorithm
        k = k if k is not None else self.k
        quantities = predict_quantities(
            algorithm, k, self.theta_r, self.theta_s, self.r_size, self.s_size
        )
        cpu_seconds, repl_seconds = model.predict_terms(
            quantities["signature_comparisons"],
            quantities["replicated_signatures"],
            k,
        )
        quantities.update(
            algorithm=algorithm,
            k=k,
            seconds=cpu_seconds + repl_seconds,
            cpu_seconds=cpu_seconds,
            replication_seconds=repl_seconds,
        )
        return quantities

    def build_partitioner(self, seed: int = 0, family_kind: str = "bitstring") -> Partitioner:
        """Instantiate the chosen algorithm at the chosen k."""
        if self.algorithm == "PSJ":
            return PSJPartitioner(self.k, seed=seed)
        if self.algorithm == "DCJ":
            return DCJPartitioner.for_cardinalities(
                self.k, self.theta_r, self.theta_s, family_kind
            )
        if self.algorithm == "LSJ":
            return LSJPartitioner.for_cardinalities(
                self.k, self.theta_r, self.theta_s, family_kind
            )
        raise ConfigurationError(f"unknown algorithm {self.algorithm!r}")


def resolve_drift_corrections(drift_history) -> "dict[str, float]":
    """Normalize a ``drift_history=`` argument into correction factors.

    Accepts ``None`` (no corrections), an already-computed
    ``{algorithm: factor}`` mapping, a JSONL drift-history path (a path
    that does not exist yet is an empty history, not an error — a first
    run has nothing to learn from), or a sequence of
    :class:`~repro.obs.drift.DriftRecord`\\ s.
    """
    if drift_history is None:
        return {}
    if isinstance(drift_history, dict):
        return dict(drift_history)
    # Imported lazily: repro.obs.adaptive imports analysis code, while
    # this module is part of core — keep the import graph acyclic.
    from ..obs.adaptive import drift_corrections

    if isinstance(drift_history, str):
        import os

        from ..obs.drift import read_drift_jsonl

        if not os.path.exists(drift_history):
            return {}
        return drift_corrections(read_drift_jsonl(drift_history))
    return drift_corrections(list(drift_history))


def plan_from_statistics(
    r_size: int,
    s_size: int,
    theta_r: float,
    theta_s: float,
    model: TimeModel,
    algorithms: tuple[str, ...] = ("DCJ", "PSJ"),
    levels: tuple[int, ...] = DEFAULT_LEVELS,
    drift_history=None,
) -> JoinPlan:
    """Steps 3-5 of the procedure, given the step 1-2 statistics.

    Useful when the inputs are disk-resident and only their statistics are
    at hand (the database layer plans this way).  ``drift_history`` makes
    step 5 drift-aware (see the module docstring).
    """
    if r_size < 1 or s_size < 1:
        raise ConfigurationError("cannot plan a join over an empty relation")
    if theta_r <= 0 or theta_s <= 0:
        raise ConfigurationError("relations must contain non-empty sets to plan")
    rho = s_size / r_size
    corrections = resolve_drift_corrections(drift_history)
    # Steps 3-4: estimate factors and predicted times over the k grid,
    # inflating/deflating each algorithm by its recent observed drift.
    candidates: list[CandidatePlan] = []
    for algorithm in algorithms:
        correction = corrections.get(algorithm, 1.0)
        for level in levels:
            k = 2**level
            comp = comparison_factor(algorithm, k, theta_r, theta_s)
            repl = replication_factor(algorithm, k, theta_r, theta_s, rho)
            seconds = model.predict_factors(comp, repl, r_size, s_size, k)
            candidates.append(CandidatePlan(
                algorithm, k, comp, repl,
                predicted_seconds=seconds * correction,
                raw_seconds=seconds,
                drift_correction=correction,
            ))
    # Step 5: pick the best.
    best = min(candidates, key=lambda plan: plan.predicted_seconds)
    return JoinPlan(
        algorithm=best.algorithm,
        k=best.k,
        predicted_seconds=best.predicted_seconds,
        theta_r=theta_r,
        theta_s=theta_s,
        r_size=r_size,
        s_size=s_size,
        candidates=candidates,
        drift_corrections={
            a: f for a, f in corrections.items() if a in algorithms
        },
    )


def choose_plan(
    lhs: Relation,
    rhs: Relation,
    model: TimeModel,
    algorithms: tuple[str, ...] = ("DCJ", "PSJ"),
    levels: tuple[int, ...] = DEFAULT_LEVELS,
    sample_size: int | None = None,
    seed: int = 0,
    drift_history=None,
) -> JoinPlan:
    """Run the five-step selection procedure on in-memory relations.

    ``sample_size`` switches step 2 from exact statistics to sampling.
    ``algorithms`` defaults to the paper's DCJ-vs-PSJ decision; add
    ``"LSJ"`` to include it (it never wins, as the paper shows).
    ``drift_history`` (records, a JSONL path, or precomputed factors)
    weights each algorithm's predictions by its recent observed drift
    before comparing — see the module docstring.
    """
    if not lhs or not rhs:
        raise ConfigurationError("cannot plan a join over an empty relation")
    # Step 1: actual sizes.
    r_size, s_size = len(lhs), len(rhs)
    # Step 2: average cardinalities (exact or sampled).
    if sample_size is None:
        theta_r = lhs.average_cardinality()
        theta_s = rhs.average_cardinality()
    else:
        theta_r = lhs.sample_cardinality(sample_size, seed)
        theta_s = rhs.sample_cardinality(sample_size, seed + 1)
    return plan_from_statistics(
        r_size, s_size, theta_r, theta_s, model, algorithms, levels,
        drift_history=drift_history,
    )
