"""A hybrid DCJ/PSJ algorithm (the paper's future-work direction).

Section 7: "Currently, we are trying to develop a hybrid algorithm that
combines the strengths of PSJ and DCJ."  The complementary regimes are by
set cardinality — PSJ wins on small sets, DCJ on large — so this hybrid:

1. splits both relations at a cardinality threshold τ into *small* and
   *large* halves;
2. drops the impossible quadrant (a set of cardinality ≥ τ can never be
   contained in one of cardinality < τ);
3. plans each remaining quadrant independently with the analytical
   optimizer, so small×small typically runs PSJ and the quadrants
   touching large sets run DCJ;
4. unions the three sub-join results.

This is a reproduction-original construction (the paper never specifies
its hybrid); it is evaluated against plain DCJ and PSJ in the
``ablation_hybrid`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from ..analysis.timemodel import TimeModel
from ..errors import ConfigurationError
from .metrics import JoinMetrics
from .operator import run_disk_join
from .optimizer import JoinPlan, choose_plan
from .sets import Relation, SetTuple

__all__ = ["HybridOutcome", "hybrid_join", "split_by_cardinality"]


def split_by_cardinality(relation: Relation, tau: int) -> tuple[Relation, Relation]:
    """Split into (cardinality < τ, cardinality >= τ), preserving tids."""
    small = Relation(name=f"{relation.name}_small")
    large = Relation(name=f"{relation.name}_large")
    for row in relation:
        (small if row.cardinality < tau else large).add(row)
    return small, large


@dataclass
class HybridOutcome:
    """Result and per-quadrant decisions of one hybrid execution."""

    result: set[tuple[int, int]]
    tau: int
    quadrants: list[tuple[str, JoinPlan, JoinMetrics]] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(metrics.total_seconds for __, __, metrics in self.quadrants)

    @property
    def total_comparisons(self) -> int:
        return sum(m.signature_comparisons for __, __, m in self.quadrants)

    @property
    def total_replicated(self) -> int:
        return sum(m.replicated_signatures for __, __, m in self.quadrants)


def hybrid_join(
    lhs: Relation,
    rhs: Relation,
    model: TimeModel,
    tau: int | None = None,
    signature_bits: int = 160,
    engine: str = "numpy",
    seed: int = 0,
) -> HybridOutcome:
    """Execute the cardinality-split hybrid join.

    ``tau`` defaults to the median cardinality across both relations,
    which balances the quadrants; any positive threshold is correct.
    """
    if not lhs or not rhs:
        return HybridOutcome(result=set(), tau=tau or 1)
    if tau is None:
        cards = [row.cardinality for row in lhs] + [row.cardinality for row in rhs]
        tau = max(1, int(median(cards)))
    if tau < 1:
        raise ConfigurationError(f"threshold τ must be >= 1, got {tau}")

    r_small, r_large = split_by_cardinality(lhs, tau)
    s_small, s_large = split_by_cardinality(rhs, tau)
    quadrant_inputs = [
        ("small⋈small", r_small, s_small),
        ("small⋈large", r_small, s_large),
        ("large⋈large", r_large, s_large),
        # large⋈small is impossible: |r| >= τ > |s| forbids r ⊆ s.
    ]

    outcome = HybridOutcome(result=set(), tau=tau)
    for label, sub_r, sub_s in quadrant_inputs:
        if not len(sub_r) or not len(sub_s):
            continue
        plan = choose_plan(sub_r, sub_s, model)
        partitioner = plan.build_partitioner(seed=seed)
        result, metrics = run_disk_join(
            sub_r, sub_s, partitioner,
            signature_bits=signature_bits, engine=engine,
        )
        outcome.result |= result
        outcome.quadrants.append((label, plan, metrics))
    return outcome
