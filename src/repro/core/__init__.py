"""Core library: signatures, hash families, partitioners, join operators."""

from .api import (
    analyze_containment_join,
    containment_join,
    explain_containment_join,
    overlap_join,
    self_containment_join,
    set_equality_join,
    superset_join,
)
from .dcj import ALTERNATION_PATTERNS, DCJPartitioner
from .hashing import (
    BitstringHashFamily,
    BooleanHashFamily,
    ExplicitHashFamily,
    PrimeHashFamily,
    make_family,
    optimal_bitstring_length,
    optimal_firing_probability,
    optimal_no_fire_probability,
    paper_example_family,
    paper_table4_family,
    step_comparison_factor,
)
from .hybrid import HybridOutcome, hybrid_join, split_by_cardinality
from .intersection import (
    intersection_join,
    intersection_join_nested_loop,
    run_disk_intersection_join,
)
from .lsj import LSJPartitioner, submasks
from .modulo import ModuloFoldPartitioner, dcj_with_any_k, lsj_with_any_k
from .metrics import JoinMetrics, PhaseMetrics
from .nested_loop import naive_join, signature_nested_loop_join
from .operator import SetContainmentJoin, Testbed, run_disk_join
from .optimizer import CandidatePlan, JoinPlan, choose_plan
from .partitioning import PartitionAssignment, Partitioner
from .psj import PSJPartitioner
from .sets import (
    Relation,
    SetTuple,
    containment_pairs_nested_loop,
    elements_from_values,
    hash_value_to_element,
)
from .shj import estimate_memory_bytes, shj_join
from .unnested import sql_unnested_join, unnest
from .signatures import (
    DEFAULT_SIGNATURE_BITS,
    recommend_signature_bits,
    bitwise_included,
    expected_bit_density,
    false_positive_probability,
    signature_of,
    signatures_of,
)

__all__ = [
    "analyze_containment_join",
    "containment_join",
    "explain_containment_join",
    "self_containment_join",
    "overlap_join",
    "set_equality_join",
    "superset_join",
    "ALTERNATION_PATTERNS",
    "DCJPartitioner",
    "BitstringHashFamily",
    "BooleanHashFamily",
    "PrimeHashFamily",
    "ExplicitHashFamily",
    "make_family",
    "optimal_bitstring_length",
    "optimal_firing_probability",
    "optimal_no_fire_probability",
    "paper_example_family",
    "paper_table4_family",
    "step_comparison_factor",
    "HybridOutcome",
    "hybrid_join",
    "split_by_cardinality",
    "intersection_join",
    "intersection_join_nested_loop",
    "run_disk_intersection_join",
    "ModuloFoldPartitioner",
    "dcj_with_any_k",
    "lsj_with_any_k",
    "LSJPartitioner",
    "submasks",
    "JoinMetrics",
    "PhaseMetrics",
    "naive_join",
    "signature_nested_loop_join",
    "SetContainmentJoin",
    "Testbed",
    "run_disk_join",
    "CandidatePlan",
    "JoinPlan",
    "choose_plan",
    "PartitionAssignment",
    "Partitioner",
    "PSJPartitioner",
    "Relation",
    "SetTuple",
    "containment_pairs_nested_loop",
    "elements_from_values",
    "hash_value_to_element",
    "estimate_memory_bytes",
    "shj_join",
    "sql_unnested_join",
    "unnest",
    "DEFAULT_SIGNATURE_BITS",
    "bitwise_included",
    "expected_bit_density",
    "false_positive_probability",
    "recommend_signature_bits",
    "signature_of",
    "signatures_of",
]
