"""Nested-loop baselines for set containment joins.

Two in-memory baselines from the paper's Section 2.1 discussion:

* :func:`naive_join` -- test every pair in R × S directly with the subset
  operator (|R|·|S| expensive set comparisons);
* :func:`signature_nested_loop_join` -- compare signatures for every pair
  first and verify only the surviving candidates (|R|·|S| cheap signature
  comparisons; the worked example reduces 16 set comparisons to 7).

Both return the exact join result and a :class:`JoinMetrics`; they serve
as ground truth in tests and as the k=1 degenerate case of partitioning.
"""

from __future__ import annotations

import time

from .metrics import JoinMetrics
from .sets import Relation
from .signatures import DEFAULT_SIGNATURE_BITS, bitwise_included, signature_of

__all__ = ["naive_join", "signature_nested_loop_join"]


def naive_join(lhs: Relation, rhs: Relation) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Brute-force R ⋈⊆ S by pairwise subset tests."""
    metrics = JoinMetrics(algorithm="NaiveNL", num_partitions=1,
                          r_size=len(lhs), s_size=len(rhs))
    started = time.perf_counter()
    result: set[tuple[int, int]] = set()
    for r in lhs:
        for s in rhs:
            metrics.set_comparisons += 1
            if r.elements <= s.elements:
                result.add((r.tid, s.tid))
    metrics.joining.seconds = time.perf_counter() - started
    metrics.result_size = len(result)
    metrics.candidates = metrics.set_comparisons
    return result, metrics


def signature_nested_loop_join(
    lhs: Relation,
    rhs: Relation,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """R ⋈⊆ S with a signature filter in front of the subset tests."""
    metrics = JoinMetrics(algorithm="SigNL", num_partitions=1,
                          r_size=len(lhs), s_size=len(rhs),
                          signature_bits=signature_bits)
    started = time.perf_counter()
    r_rows = [(row, signature_of(row.elements, signature_bits)) for row in lhs]
    s_rows = [(row, signature_of(row.elements, signature_bits)) for row in rhs]
    result: set[tuple[int, int]] = set()
    for r, r_sig in r_rows:
        for s, s_sig in s_rows:
            metrics.signature_comparisons += 1
            if not bitwise_included(r_sig, s_sig):
                continue
            metrics.candidates += 1
            metrics.set_comparisons += 1
            if r.elements <= s.elements:
                result.add((r.tid, s.tid))
            else:
                metrics.false_positives += 1
    metrics.joining.seconds = time.perf_counter() - started
    metrics.result_size = len(result)
    return result, metrics
