"""The disk-based set-containment-join operator.

This is the reproduction of the paper's testbed operator: it is built so
that "just the actual partitioning algorithm can be exchanged, other
conditions remaining equal".  A join runs in three phases:

1. **Partitioning** -- scan each stored relation once, compute each
   tuple's signature, ask the partitioner for its partition(s) and append
   ``(signature, tid)`` entries to the per-relation partition stores
   (portioned B-trees, as in the paper).

2. **Joining** -- for each partition pair, compare signatures with a block
   nested loop.  Portions are read in batches to avoid random I/O; if a
   partition's R side exceeds the in-memory block budget, the S side is
   re-scanned per block (classic block-nested-loop behaviour, matching the
   paper's "large partitions that do not fit into the memory available").
   Pairs passing the bitwise-inclusion filter become candidates.

3. **Verification** -- candidate tuple identifiers are sorted and the
   corresponding tuples fetched from the relation B-trees (sorted fetches
   avoid random I/O, as in the paper), then tested with the real subset
   predicate to eliminate false positives.

Two comparison engines are provided: ``"python"`` (pure-Python loop over
integer signatures, faithful to the per-comparison accounting) and
``"numpy"`` (vectorized bitwise inclusion over packed 64-bit words; same
comparison counts, much faster at paper scale).
"""

from __future__ import annotations

import time
from contextlib import suppress
from typing import Iterable

import numpy as np

from ..errors import ConfigurationError, SetJoinError
from ..obs.registry import get_registry
from ..obs.trace import current_tracer, use_tracer
from ..storage.buffer import BufferPool
from ..storage.pager import DiskManager, FileDiskManager, InMemoryDiskManager
from ..storage.partition_store import PartitionStore
from ..storage.relation_store import DEFAULT_PAYLOAD_SIZE, RelationStore
from .metrics import JoinMetrics, PhaseMetrics
from .partitioning import Partitioner
from .sets import Relation
from .signatures import (
    DEFAULT_SIGNATURE_BITS,
    bitwise_included,
    pack_signatures,
    signature_of,
)

__all__ = ["Testbed", "SetContainmentJoin", "run_disk_join", "compare_block"]

ENGINES = ("python", "numpy")


def compare_block(
    engine: str,
    signature_bits: int,
    r_block: "list[tuple[int, int]]",
    s_batches: "Iterable[list[tuple[int, int]]]",
    add,
) -> int:
    """Compare one R block against an S partition's batches.

    The single block-nested-loop kernel shared by the serial operator and
    the partition-parallel workers (:mod:`repro.parallel.worker`), so both
    paths perform bit-for-bit the same comparisons.  ``add(r_tid, s_tid)``
    is called for every pair passing the bitwise-inclusion filter; the
    number of signature comparisons performed is returned.
    """
    comparisons = 0
    if engine == "numpy":
        packed_r = pack_signatures(
            [signature for signature, __ in r_block], signature_bits
        )
        r_tids = np.array([tid for __, tid in r_block], dtype=np.int64)
        words = packed_r.shape[1]
        mask64 = (1 << 64) - 1
        zero = np.uint64(0)
        for s_batch in s_batches:
            for s_sig, s_tid in s_batch:
                comparisons += len(r_block)
                # sig(r) ⊆ᵇ sig(s)  ⟺  r_words & ~s_words == 0, per word.
                included = np.ones(len(r_block), dtype=bool)
                for word in range(words):
                    not_s = np.uint64(~(s_sig >> (64 * word)) & mask64)
                    included &= (packed_r[:, word] & not_s) == zero
                for r_tid in r_tids[included]:
                    add(int(r_tid), s_tid)
        return comparisons
    for s_batch in s_batches:
        for s_sig, s_tid in s_batch:
            not_s = ~s_sig
            for r_sig, r_tid in r_block:
                comparisons += 1
                if r_sig & not_s == 0:
                    add(r_tid, s_tid)
    return comparisons


class Testbed:
    """A disk, a buffer pool and the two stored input relations.

    ``path=None`` keeps pages in memory (fast, identical I/O accounting);
    a file path gives real on-disk storage.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        path: str | None = None,
        page_size: int = 4096,
        buffer_pages: int = 512,
        buffer_policy: str = "lru",
    ):
        if path is None:
            self.disk: DiskManager = InMemoryDiskManager(page_size)
        else:
            self.disk = FileDiskManager(path, page_size)
        self.pool = BufferPool(self.disk, capacity=buffer_pages, policy=buffer_policy)
        self.relation_r: RelationStore | None = None
        self.relation_s: RelationStore | None = None

    @classmethod
    def from_components(
        cls,
        disk: DiskManager,
        pool: BufferPool,
        relation_r: RelationStore,
        relation_s: RelationStore,
    ) -> "Testbed":
        """Wrap pre-existing storage components (e.g. a database's) so the
        operator can run over already-stored relations."""
        testbed = cls.__new__(cls)
        testbed.disk = disk
        testbed.pool = pool
        testbed.relation_r = relation_r
        testbed.relation_s = relation_s
        return testbed

    def load(
        self,
        lhs: Relation,
        rhs: Relation,
        payload_size: int = DEFAULT_PAYLOAD_SIZE,
    ) -> None:
        """Store both input relations (R = subset side, S = superset side).

        Loads in tid order through the B-tree bulk loader (pages written
        once, no splits).
        """
        self.relation_r = RelationStore.create_sorted(
            self.pool,
            sorted((row.tid, row.elements) for row in lhs),
            payload_size,
            name=lhs.name or "R",
        )
        self.relation_s = RelationStore.create_sorted(
            self.pool,
            sorted((row.tid, row.elements) for row in rhs),
            payload_size,
            name=rhs.name or "S",
        )
        self.pool.flush_all()

    def close(self) -> None:
        self.pool.flush_all()
        self.disk.close()

    def __enter__(self) -> "Testbed":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SetContainmentJoin:
    """Executes R ⋈⊆ S on a :class:`Testbed` with a pluggable partitioner."""

    def __init__(
        self,
        testbed: Testbed,
        partitioner: Partitioner,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        engine: str = "numpy",
        block_entries: int = 200_000,
        batch_portions: int = 8,
        monolithic_partitions: bool = False,
        resident_partitions: int = 0,
        spill_candidates: bool = False,
        verify_per_partition: bool = False,
        workers: int = 1,
        parallel_backend: str = "serial",
        shard_timeout: float | None = None,
        shard_hook=None,
        tracer=None,
        query_id: int | None = None,
    ):
        """Configure the operator.

        Beyond the core knobs, two implementation options from the
        paper's Section 6 discussion are available:

        * ``resident_partitions`` — keep the first ``m`` partitions of
          both relations permanently in main memory instead of writing
          them to disk ("keeping a fixed number of partitions permanently
          in main memory improves the execution time when much memory is
          available").  Resident entries are counted separately in the
          metrics since they cost no partition I/O.
        * ``spill_candidates`` — separate the joining and verification
          phases by writing candidate tuple-identifier pairs to a
          temporary B-tree instead of holding them in memory ("first
          writing out potentially joining tuple identifiers of all
          partitions to disk may improve performance").
        * ``verify_per_partition`` — verify candidates as soon as each
          partition pair finishes, interleaving verification with joining
          the way the paper's testbed does ("After comparing all
          signatures in two partition batches, the identifiers of
          potentially joining tuples ... are sorted, and the
          corresponding tuples are fetched from disk").  Mutually
          exclusive with ``spill_candidates``.

        ``workers``/``parallel_backend``/``shard_timeout`` engage the
        partition-parallel execution engine (:mod:`repro.parallel`):
        with ``workers > 1`` the joining phase's partition pairs are
        sharded across workers (largest-partition-first) and executed by
        the named backend (``"serial"``, ``"thread"`` or ``"process"``).
        ``workers=1`` (the default) takes the original single-threaded
        code path untouched.  Parallel execution implies deferred
        verification, so it is mutually exclusive with
        ``spill_candidates`` and ``verify_per_partition``.

        ``tracer`` is an optional :class:`repro.obs.trace.Tracer`; when
        given (or when an ambient tracer is active, see
        :func:`repro.obs.trace.use_tracer`) the run produces a span tree
        covering the three phases, every partition pair, buffer-pool
        misses and — for parallel runs — per-shard worker spans stitched
        under the joining phase.  Tracing never changes results or the
        paper's x/y accounting.
        """
        if testbed.relation_r is None or testbed.relation_s is None:
            raise ConfigurationError("testbed has no loaded relations")
        if engine not in ENGINES:
            raise ConfigurationError(f"engine must be one of {ENGINES}, got {engine!r}")
        if block_entries < 1:
            raise ConfigurationError("block_entries must be >= 1")
        if resident_partitions < 0:
            raise ConfigurationError("resident_partitions must be >= 0")
        if spill_candidates and verify_per_partition:
            raise ConfigurationError(
                "spill_candidates and verify_per_partition are mutually "
                "exclusive (spilling exists to defer verification)"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        from ..parallel.executor import BACKENDS

        if parallel_backend not in BACKENDS:
            raise ConfigurationError(
                f"parallel_backend must be one of {BACKENDS}, "
                f"got {parallel_backend!r}"
            )
        if workers > 1 and (spill_candidates or verify_per_partition):
            raise ConfigurationError(
                "parallel execution (workers > 1) defers verification and "
                "keeps candidates in worker memory; it is mutually "
                "exclusive with spill_candidates and verify_per_partition"
            )
        self.testbed = testbed
        self.partitioner = partitioner
        self.signature_bits = signature_bits
        self.signature_bytes = (signature_bits + 7) // 8
        self.engine = engine
        self.block_entries = block_entries
        self.batch_portions = batch_portions
        self.monolithic_partitions = monolithic_partitions
        self.resident_partitions = min(
            resident_partitions, partitioner.num_partitions
        )
        self.spill_candidates = spill_candidates
        self.verify_per_partition = verify_per_partition
        self.workers = workers
        self.parallel_backend = parallel_backend
        self.shard_timeout = shard_timeout
        #: optional callable receiving every ShardSpec just before
        #: dispatch; the chaos layer (repro.service.chaos) uses it to arm
        #: per-shard delays, I/O faults and worker kills.
        self.shard_hook = shard_hook
        self.tracer = tracer
        #: service-level query this run serves; stamped on the join span
        #: and threaded into worker shard specs so every span of the run
        #: stitches back to one query trace.
        self.query_id = query_id
        #: the tracer run() resolved for the current execution.  Phases
        #: and the parallel engine read this instead of the ambient
        #: global, which is a shared slot and races under the dist
        #: coordinator's thread fanout.
        self._run_tracer = None
        #: test hook threaded into parallel workers: fail the worker's own
        #: disk manager after N physical I/Os (see repro.parallel.worker).
        self._worker_fault_after: int | None = None
        self._resident_r: list[list[tuple[int, int]]] = []
        self._resident_s: list[list[tuple[int, int]]] = []

    # ------------------------------------------------------------------

    def run(self, cold_cache: bool = True) -> tuple[set[tuple[int, int]], JoinMetrics]:
        """Execute the join; returns (result pairs, metrics).

        ``cold_cache`` drops the buffer pool first, reproducing the paper's
        "cold cache" measurement protocol.
        """
        if cold_cache:
            self.testbed.pool.drop_all()
        metrics = JoinMetrics(
            algorithm=self.partitioner.name,
            num_partitions=self.partitioner.num_partitions,
            r_size=len(self.testbed.relation_r),
            s_size=len(self.testbed.relation_s),
            signature_bits=self.signature_bits,
        )
        tracer = self.tracer if self.tracer is not None else current_tracer()
        self._run_tracer = tracer
        pool_before = self.testbed.pool.stats.snapshot()
        root_attrs = dict(
            algorithm=metrics.algorithm,
            k=metrics.num_partitions,
            r_size=metrics.r_size,
            s_size=metrics.s_size,
            engine=self.engine,
            workers=self.workers,
        )
        if self.query_id is not None:
            root_attrs["query_id"] = self.query_id
        with use_tracer(tracer), tracer.span("join", **root_attrs) as root:
            parts_r, parts_s = self._partition_phase(metrics)
            candidates: _CandidateSink | None = None
            try:
                if self.verify_per_partition:
                    result = self._join_and_verify_phase(
                        parts_r, parts_s, metrics
                    )
                    self._drop_partitions(parts_r, parts_s)
                else:
                    if self.workers > 1:
                        candidates = self._parallel_join_phase(
                            parts_r, parts_s, metrics
                        )
                    else:
                        candidates = self._join_phase(parts_r, parts_s, metrics)
                    # Partition data is temporary ("stored on disk
                    # temporarily"); reclaim its pages before verification.
                    self._drop_partitions(parts_r, parts_s)
                    result = self._verification_phase(candidates, metrics)
            except BaseException:
                # Spill cleanup must run on the failure path too, so an
                # aborted join never strands temporary pages in a long-lived
                # database session.
                self._drop_partitions(parts_r, parts_s)
                if candidates is not None:
                    with suppress(SetJoinError):
                        candidates.dispose()
                raise
            metrics.result_size = len(result)
            pool_delta = self.testbed.pool.stats.delta(pool_before)
            metrics.buffer_hits += pool_delta.hits
            metrics.buffer_misses += pool_delta.misses
            root.set(
                results=metrics.result_size,
                signature_comparisons=metrics.signature_comparisons,
                replicated_signatures=metrics.replicated_signatures,
                candidates=metrics.candidates,
                buffer_hits=metrics.buffer_hits,
                buffer_misses=metrics.buffer_misses,
            )
        return result, metrics

    def _drop_partitions(
        self, parts_r: "PartitionStore | None", parts_s: "PartitionStore | None"
    ) -> None:
        """Best-effort, idempotent reclamation of temporary partition pages."""
        for store in (parts_r, parts_s):
            if store is not None and not store.dropped:
                with suppress(SetJoinError):
                    store.drop()
        self._resident_r = []
        self._resident_s = []

    def _active_tracer(self):
        """The tracer run() resolved, falling back to the ambient one.

        Phases must not read the ambient global directly: under the dist
        coordinator's thread fanout several operators run concurrently
        and the ambient slot is last-writer-wins, which would nest one
        shard's phases under another shard's tree.
        """
        if self._run_tracer is not None:
            return self._run_tracer
        return current_tracer()

    # ------------------------------------------------------------------
    # Phase 1: partitioning
    # ------------------------------------------------------------------

    def _partition_phase(
        self, metrics: JoinMetrics
    ) -> tuple[PartitionStore, PartitionStore]:
        disk = self.testbed.disk
        pool = self.testbed.pool
        before = disk.stats.snapshot()
        started = time.perf_counter()

        resident = self.resident_partitions
        self._resident_r = [[] for __ in range(resident)]
        self._resident_s = [[] for __ in range(resident)]

        tracer = self._active_tracer()
        self.partitioner.reset_route_stats()
        parts_r: PartitionStore | None = None
        parts_s: PartitionStore | None = None
        with tracer.span(
            "phase.partition", k=self.partitioner.num_partitions
        ) as span:
            try:
                with tracer.span("partition.scan_r", tuples=metrics.r_size):
                    parts_r = self._make_store()
                    for tid, elements, __ in self.testbed.relation_r.scan():
                        signature = signature_of(elements, self.signature_bits)
                        for index in self.partitioner.assign_r(elements):
                            if index < resident:
                                self._resident_r[index].append(
                                    (signature, tid)
                                )
                            else:
                                parts_r.append(index, signature, tid)
                    parts_r.seal()

                with tracer.span("partition.scan_s", tuples=metrics.s_size):
                    parts_s = self._make_store()
                    for tid, elements, __ in self.testbed.relation_s.scan():
                        signature = signature_of(elements, self.signature_bits)
                        for index in self.partitioner.assign_s(elements):
                            if index < resident:
                                self._resident_s[index].append(
                                    (signature, tid)
                                )
                            else:
                                parts_s.append(index, signature, tid)
                    parts_s.seal()

                pool.flush_all()
            except BaseException:
                self._drop_partitions(parts_r, parts_s)
                raise
            metrics.replicated_signatures = (
                parts_r.total_entries + parts_s.total_entries
            )
            metrics.resident_signatures = sum(map(len, self._resident_r)) + sum(
                map(len, self._resident_s)
            )
            metrics.partitioning = PhaseMetrics.from_io_delta(
                time.perf_counter() - started, disk.stats.delta(before)
            )
            span.set(
                replicated_signatures=metrics.replicated_signatures,
                resident_signatures=metrics.resident_signatures,
                page_reads=metrics.partitioning.page_reads,
                page_writes=metrics.partitioning.page_writes,
            )
            route_stats = self.partitioner.route_stats()
            if route_stats:
                span.set(**route_stats)
                registry = get_registry()
                for name, value in route_stats.items():
                    registry.counter(
                        f"setjoin_dcj_{name}_total",
                        f"DCJ routing: {name.replace('_', ' ')}",
                    ).inc(value)
        return parts_r, parts_s

    def _make_store(self) -> PartitionStore:
        return PartitionStore(
            self.testbed.pool,
            signature_bytes=self.signature_bytes,
            num_partitions=self.partitioner.num_partitions,
            monolithic=self.monolithic_partitions,
        )

    # ------------------------------------------------------------------
    # Phase 2: joining
    # ------------------------------------------------------------------

    def _join_phase(
        self,
        parts_r: PartitionStore,
        parts_s: PartitionStore,
        metrics: JoinMetrics,
    ) -> "_CandidateSink":
        disk = self.testbed.disk
        before = disk.stats.snapshot()
        started = time.perf_counter()
        tracer = self._active_tracer()
        if self.spill_candidates:
            candidates: _CandidateSink = _SpilledCandidates(self.testbed.pool)
        else:
            candidates = _SetCandidates()
        with tracer.span("phase.join") as span:
            for partition in range(self.partitioner.num_partitions):
                r_entries = self._partition_size_r(parts_r, partition)
                if not r_entries:
                    continue
                s_entries = self._partition_size_s(parts_s, partition)
                if not s_entries:
                    continue
                with tracer.span(
                    "join.partition",
                    partition=partition,
                    r_entries=r_entries,
                    s_entries=s_entries,
                ) as partition_span:
                    comparisons_before = metrics.signature_comparisons
                    for block in self._r_blocks(parts_r, partition):
                        self._join_block(
                            block, parts_s, partition, metrics, candidates
                        )
                    partition_span.set(
                        comparisons=metrics.signature_comparisons
                        - comparisons_before
                    )
            metrics.candidates = len(candidates)
            metrics.joining = PhaseMetrics.from_io_delta(
                time.perf_counter() - started, disk.stats.delta(before)
            )
            span.set(
                comparisons=metrics.signature_comparisons,
                candidates=metrics.candidates,
                page_reads=metrics.joining.page_reads,
                page_writes=metrics.joining.page_writes,
            )
        return candidates

    def _parallel_join_phase(
        self,
        parts_r: PartitionStore,
        parts_s: PartitionStore,
        metrics: JoinMetrics,
    ) -> "_CandidateSink":
        """Joining phase over the partition-parallel engine.

        Shards the partition pairs across ``self.workers`` workers
        (largest-partition-first), runs them on the configured backend
        and merges the per-worker results deterministically.  The x/y
        accounting is preserved exactly: each partition pair is joined
        by exactly one worker with the same block-nested-loop kernel the
        serial path uses, so summed signature comparisons equal the
        serial count and the result set is identical.
        """
        from ..parallel.engine import run_parallel_join

        disk = self.testbed.disk
        before = disk.stats.snapshot()
        started = time.perf_counter()
        with self._active_tracer().span(
            "phase.join",
            workers=self.workers,
            backend=self.parallel_backend,
        ) as span:
            pairs, worker_metrics = run_parallel_join(self, parts_r, parts_s)
            candidates = _SetCandidates()
            for r_tid, s_tid in pairs:
                candidates.add(r_tid, s_tid)
            metrics.signature_comparisons += worker_metrics.signature_comparisons
            metrics.candidates = len(candidates)
            metrics.buffer_hits += worker_metrics.buffer_hits
            metrics.buffer_misses += worker_metrics.buffer_misses
            delta = disk.stats.delta(before)
            # Parent-side I/O (inline shard materialization) plus the I/O the
            # workers did through their own read-only storage views.
            metrics.joining = PhaseMetrics(
                time.perf_counter() - started,
                delta.page_reads + worker_metrics.joining.page_reads,
                delta.page_writes + worker_metrics.joining.page_writes,
            )
            # The per-shard timings the merge used to discard: each
            # shard's true wall seconds and worker-side page I/O.
            metrics.shard_joining = worker_metrics.shard_joining
            span.set(
                shards=len(metrics.shard_joining),
                comparisons=metrics.signature_comparisons,
                candidates=metrics.candidates,
                page_reads=metrics.joining.page_reads,
                page_writes=metrics.joining.page_writes,
            )
        return candidates

    def _join_and_verify_phase(
        self,
        parts_r: PartitionStore,
        parts_s: PartitionStore,
        metrics: JoinMetrics,
    ) -> set[tuple[int, int]]:
        """Interleaved mode: verify each partition's candidates right after
        joining it, as the paper's testbed does.

        A pair replicated into several partitions (possible under DCJ) is
        verified only the first time it appears.
        """
        disk = self.testbed.disk
        tracer = self._active_tracer()
        result: set[tuple[int, int]] = set()
        seen: set[tuple[int, int]] = set()
        join_seconds = 0.0
        with tracer.span("phase.join+verify") as phase_span:
            for partition in range(self.partitioner.num_partitions):
                r_entries = self._partition_size_r(parts_r, partition)
                if not r_entries:
                    continue
                s_entries = self._partition_size_s(parts_s, partition)
                if not s_entries:
                    continue
                before = disk.stats.snapshot()
                started = time.perf_counter()
                fresh = _SetCandidates()
                with tracer.span(
                    "join.partition",
                    partition=partition,
                    r_entries=r_entries,
                    s_entries=s_entries,
                ):
                    for block in self._r_blocks(parts_r, partition):
                        self._join_block(
                            block, parts_s, partition, metrics, fresh
                        )
                join_seconds += time.perf_counter() - started
                join_delta = disk.stats.delta(before)
                metrics.joining.page_reads += join_delta.page_reads
                metrics.joining.page_writes += join_delta.page_writes

                before = disk.stats.snapshot()
                started = time.perf_counter()
                with tracer.span(
                    "verify.partition", partition=partition
                ) as verify_span:
                    new_pairs = [
                        pair for pair in fresh.sorted_pairs()
                        if pair not in seen
                    ]
                    seen.update(new_pairs)
                    r_sets = self.testbed.relation_r.fetch_many(
                        tid for tid, __ in new_pairs
                    )
                    s_sets = self.testbed.relation_s.fetch_many(
                        tid for __, tid in new_pairs
                    )
                    for r_tid, s_tid in new_pairs:
                        metrics.set_comparisons += 1
                        if r_sets[r_tid] <= s_sets[s_tid]:
                            result.add((r_tid, s_tid))
                        else:
                            metrics.false_positives += 1
                    verify_span.set(candidates=len(new_pairs))
                metrics.verification.seconds += time.perf_counter() - started
                verify_delta = disk.stats.delta(before)
                metrics.verification.page_reads += verify_delta.page_reads
                metrics.verification.page_writes += verify_delta.page_writes
            metrics.joining.seconds = join_seconds
            metrics.candidates = len(seen)
            phase_span.set(
                candidates=metrics.candidates,
                false_positives=metrics.false_positives,
            )
        return result

    def _partition_size_r(self, parts_r: PartitionStore, partition: int) -> int:
        if partition < self.resident_partitions:
            return len(self._resident_r[partition])
        return parts_r.partition_size(partition)

    def _partition_size_s(self, parts_s: PartitionStore, partition: int) -> int:
        if partition < self.resident_partitions:
            return len(self._resident_s[partition])
        return parts_s.partition_size(partition)

    def _r_blocks(
        self, parts_r: PartitionStore, partition: int
    ) -> Iterable[list[tuple[int, int]]]:
        """Group the R side of a partition into memory-bounded blocks."""
        if partition < self.resident_partitions:
            entries = self._resident_r[partition]
            for start in range(0, len(entries), self.block_entries):
                yield entries[start : start + self.block_entries]
            return
        block: list[tuple[int, int]] = []
        for batch in parts_r.scan_partition_batches(partition, self.batch_portions):
            block.extend(batch)
            if len(block) >= self.block_entries:
                yield block
                block = []
        if block:
            yield block

    def _s_batches(
        self, parts_s: PartitionStore, partition: int
    ) -> Iterable[list[tuple[int, int]]]:
        if partition < self.resident_partitions:
            yield self._resident_s[partition]
            return
        yield from parts_s.scan_partition_batches(partition, self.batch_portions)

    def _join_block(
        self,
        r_block: list[tuple[int, int]],
        parts_s: PartitionStore,
        partition: int,
        metrics: JoinMetrics,
        candidates: "_CandidateSink",
    ) -> None:
        metrics.signature_comparisons += compare_block(
            self.engine,
            self.signature_bits,
            r_block,
            self._s_batches(parts_s, partition),
            candidates.add,
        )

    # ------------------------------------------------------------------
    # Phase 3: verification
    # ------------------------------------------------------------------

    def _verification_phase(
        self,
        candidates: "_CandidateSink",
        metrics: JoinMetrics,
    ) -> set[tuple[int, int]]:
        disk = self.testbed.disk
        before = disk.stats.snapshot()
        started = time.perf_counter()
        with self._active_tracer().span("phase.verify") as span:
            pairs = list(candidates.sorted_pairs())
            candidates.dispose()
            r_sets = self.testbed.relation_r.fetch_many(
                tid for tid, __ in pairs
            )
            s_sets = self.testbed.relation_s.fetch_many(
                tid for __, tid in pairs
            )
            result: set[tuple[int, int]] = set()
            for r_tid, s_tid in pairs:
                metrics.set_comparisons += 1
                if r_sets[r_tid] <= s_sets[s_tid]:
                    result.add((r_tid, s_tid))
                else:
                    metrics.false_positives += 1
            metrics.verification = PhaseMetrics.from_io_delta(
                time.perf_counter() - started, disk.stats.delta(before)
            )
            span.set(
                candidates=len(pairs),
                false_positives=metrics.false_positives,
                results=len(result),
                page_reads=metrics.verification.page_reads,
            )
        return result


class _CandidateSink:
    """Deduplicating collector of candidate (r_tid, s_tid) pairs."""

    def add(self, r_tid: int, s_tid: int) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def sorted_pairs(self) -> Iterable[tuple[int, int]]:
        raise NotImplementedError

    def dispose(self) -> None:
        """Release any resources; the sink must not be used afterwards."""


class _SetCandidates(_CandidateSink):
    """Default: candidates kept in a main-memory set."""

    def __init__(self):
        self._pairs: set[tuple[int, int]] = set()

    def add(self, r_tid: int, s_tid: int) -> None:
        self._pairs.add((r_tid, s_tid))

    def __len__(self) -> int:
        return len(self._pairs)

    def sorted_pairs(self) -> Iterable[tuple[int, int]]:
        return sorted(self._pairs)

    def dispose(self) -> None:
        self._pairs = set()


class _SpilledCandidates(_CandidateSink):
    """Candidates written to a temporary B-tree (Section 6's option of
    separating the joining and verification phases through disk).

    The B-tree key is the concatenated (r_tid, s_tid) pair, so duplicates
    collapse and a scan yields pairs in verification order for free.
    """

    def __init__(self, pool):
        from ..storage.btree import BTree

        self._pool = pool
        self._tree: BTree | None = BTree.create(pool)
        self._count = 0

    def add(self, r_tid: int, s_tid: int) -> None:
        assert self._tree is not None
        key = r_tid.to_bytes(8, "big") + s_tid.to_bytes(8, "big")
        if self._tree.get(key) is None:
            self._tree.insert(key, b"")
            self._count += 1

    def __len__(self) -> int:
        return self._count

    def sorted_pairs(self) -> Iterable[tuple[int, int]]:
        assert self._tree is not None
        for key, __ in self._tree.items():
            yield int.from_bytes(key[:8], "big"), int.from_bytes(key[8:], "big")

    def dispose(self) -> None:
        if self._tree is not None:
            self._tree.destroy()
            self._tree = None


def run_disk_join(
    lhs: Relation,
    rhs: Relation,
    partitioner: Partitioner,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
    engine: str = "numpy",
    buffer_pages: int = 512,
    buffer_policy: str = "lru",
    payload_size: int = DEFAULT_PAYLOAD_SIZE,
    path: str | None = None,
    monolithic_partitions: bool = False,
    resident_partitions: int = 0,
    spill_candidates: bool = False,
    verify_per_partition: bool = False,
    workers: int = 1,
    backend: str = "serial",
    shard_timeout: float | None = None,
    tracer=None,
    shards: int = 1,
    shard_fanout: str = "thread",
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Convenience wrapper: build a testbed, load, join, tear down.

    ``workers``/``backend`` run the joining phase on the
    partition-parallel engine (see :mod:`repro.parallel`); the result
    set and the paper's x/y counts are identical for any worker count.
    ``shards > 1`` distributes the relations across that many
    independent in-memory databases behind the dist coordinator
    (:mod:`repro.dist`) instead, with ``shard_fanout`` selecting the
    coordinator-level dispatch; results and x/y stay bit-identical.
    ``tracer`` enables span tracing of the run (see :mod:`repro.obs`).
    """
    if shards > 1:
        from ..dist.coordinator import ShardedDatabase

        with ShardedDatabase.open(
            None, shards=shards, fanout=shard_fanout,
            buffer_pages=buffer_pages, buffer_policy=buffer_policy,
        ) as db:
            db.create_relation(lhs.name or "R", lhs)
            db.create_relation(rhs.name or "S", rhs)
            return db.join(
                lhs.name or "R", rhs.name or "S",
                signature_bits=signature_bits, engine=engine,
                workers=workers, backend=backend,
                shard_timeout=shard_timeout, tracer=tracer,
                partitioner=partitioner,
            )
    with Testbed(path=path, buffer_pages=buffer_pages,
                 buffer_policy=buffer_policy) as testbed:
        testbed.load(lhs, rhs, payload_size=payload_size)
        join = SetContainmentJoin(
            testbed,
            partitioner,
            signature_bits=signature_bits,
            engine=engine,
            monolithic_partitions=monolithic_partitions,
            resident_partitions=resident_partitions,
            spill_candidates=spill_candidates,
            verify_per_partition=verify_per_partition,
            workers=workers,
            parallel_backend=backend,
            shard_timeout=shard_timeout,
            tracer=tracer,
        )
        return join.run()
