"""High-level one-call joins.

Convenience entry points for downstream users who just want an answer:

* :func:`containment_join` — ``{(r, s) : r ⊆ s}`` with automatic
  algorithm/partition-count selection (the paper's optimizer) unless an
  algorithm is forced.
* :func:`superset_join` — ``{(r, s) : r ⊇ s}``, computed by swapping the
  sides of a containment join.
* :func:`set_equality_join` — ``{(r, s) : r = s}``, the intersection of
  both directions, answered directly via signature-keyed hashing.
* :func:`overlap_join` — re-export of the intersection join.

All return ``(pairs, metrics)`` like the lower-level operators.
"""

from __future__ import annotations

import time
from collections import defaultdict

from ..analysis.timemodel import PAPER_TIME_MODEL, TimeModel
from ..errors import ConfigurationError
from .intersection import intersection_join as overlap_join
from .metrics import JoinMetrics
from .operator import run_disk_join
from .optimizer import choose_plan
from .sets import Relation
from .signatures import DEFAULT_SIGNATURE_BITS, signature_of

__all__ = [
    "containment_join",
    "self_containment_join",
    "superset_join",
    "set_equality_join",
    "overlap_join",
    "explain_containment_join",
    "analyze_containment_join",
]

_ALGORITHMS = ("auto", "DCJ", "PSJ", "LSJ")


def containment_join(
    lhs: Relation,
    rhs: Relation,
    algorithm: str = "auto",
    num_partitions: int | None = None,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
    model: TimeModel = PAPER_TIME_MODEL,
    seed: int = 0,
    workers: int = 1,
    backend: str = "serial",
    tracer=None,
    drift_history=None,
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Compute ``{(r.tid, s.tid) : r ⊆ s}``.

    ``algorithm="auto"`` runs the paper's five-step selection procedure;
    naming an algorithm uses it at ``num_partitions`` (default 32, any
    value — DCJ/LSJ fold via the modulo approach when it is not a power
    of two).

    ``workers``/``backend`` run the joining phase on the
    partition-parallel engine (:mod:`repro.parallel`); results and the
    paper's x/y counts are identical for any worker count.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) records a span tree
    of the execution — phases, partition pairs, per-shard worker spans —
    without changing results or accounting; see :mod:`repro.obs`.

    ``drift_history`` (drift records, a JSONL history path, or a
    precomputed ``{algorithm: factor}`` mapping) makes the ``"auto"``
    selection drift-aware: each candidate algorithm's predicted time is
    weighted by its recent observed wall-time drift before DCJ and PSJ
    are compared (:mod:`repro.obs.adaptive`).  Once an (algorithm, k)
    pair is chosen, execution — results and x/y accounting — is
    bit-identical with or without the history.
    """
    if algorithm not in _ALGORITHMS:
        raise ConfigurationError(
            f"algorithm must be one of {_ALGORITHMS}, got {algorithm!r}"
        )
    if not lhs or not rhs:
        return set(), JoinMetrics(algorithm=algorithm, r_size=len(lhs),
                                  s_size=len(rhs))
    if algorithm == "auto":
        plan = choose_plan(lhs, rhs, model, drift_history=drift_history)
        partitioner = plan.build_partitioner(seed=seed)
    else:
        from ..analysis.simulate import make_partitioner
        from .modulo import dcj_with_any_k, lsj_with_any_k

        k = num_partitions or 32
        theta_r = max(lhs.average_cardinality(), 1.0)
        theta_s = max(rhs.average_cardinality(), 1.0)
        if algorithm == "PSJ" or k & (k - 1) == 0 and k >= 2:
            partitioner = make_partitioner(algorithm, k, theta_r, theta_s, seed)
        elif algorithm == "DCJ":
            partitioner = dcj_with_any_k(k, theta_r, theta_s)
        else:
            partitioner = lsj_with_any_k(k, theta_r, theta_s)
    return run_disk_join(
        lhs, rhs, partitioner, signature_bits=signature_bits,
        workers=workers, backend=backend, tracer=tracer,
    )


def explain_containment_join(lhs: Relation, rhs: Relation, **kwargs):
    """EXPLAIN a containment join: the predicted plan, nothing executed.

    Delegates to :func:`repro.obs.explain.explain_join` (imported lazily;
    the inspector depends on this package).  Returns an
    :class:`~repro.obs.explain.ExplainReport`.
    """
    from ..obs.explain import explain_join

    return explain_join(lhs, rhs, **kwargs)


def analyze_containment_join(lhs: Relation, rhs: Relation, **kwargs):
    """EXPLAIN ANALYZE a containment join: run it (results bit-identical
    to :func:`containment_join`), annotate the plan with observations.

    Delegates to :func:`repro.obs.explain.analyze_join`; returns an
    :class:`~repro.obs.explain.AnalyzeResult` carrying the report, the
    result pairs, the metrics, and the recorded drift.
    """
    from ..obs.explain import analyze_join

    return analyze_join(lhs, rhs, **kwargs)


def superset_join(
    lhs: Relation,
    rhs: Relation,
    algorithm: str = "auto",
    num_partitions: int | None = None,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
    model: TimeModel = PAPER_TIME_MODEL,
    seed: int = 0,
    workers: int = 1,
    backend: str = "serial",
    tracer=None,
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Compute ``{(l.tid, r.tid) : l ⊇ r}`` — containment with the sides
    swapped and the result pairs swapped back."""
    pairs, metrics = containment_join(
        rhs, lhs, algorithm, num_partitions, signature_bits, model, seed,
        workers=workers, backend=backend, tracer=tracer,
    )
    return {(l_tid, r_tid) for r_tid, l_tid in pairs}, metrics


def self_containment_join(
    relation: Relation,
    algorithm: str = "auto",
    num_partitions: int | None = None,
    strict: bool = True,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
    model: TimeModel = PAPER_TIME_MODEL,
    seed: int = 0,
    workers: int = 1,
    backend: str = "serial",
    tracer=None,
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Containment pairs within one relation: ``{(a, b) : a ⊆ b, a ≠ b}``.

    The "folding flat relations into a nested representation" use case
    from the paper's introduction.  ``strict=True`` (default) drops the
    trivial reflexive pairs; set it to ``False`` to keep them.
    """
    pairs, metrics = containment_join(
        relation, relation, algorithm, num_partitions,
        signature_bits, model, seed,
        workers=workers, backend=backend, tracer=tracer,
    )
    if strict:
        pairs = {(a, b) for a, b in pairs if a != b}
        metrics.result_size = len(pairs)
    return pairs, metrics


def set_equality_join(
    lhs: Relation,
    rhs: Relation,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Compute ``{(r.tid, s.tid) : r = s}`` by hashing on signatures.

    Equal sets have equal signatures, so a signature-keyed hash join with
    exact verification does it in linear time — the degenerate case where
    both ⊆ and ⊇ hold.
    """
    metrics = JoinMetrics(algorithm="EqualityHash", num_partitions=1,
                          r_size=len(lhs), s_size=len(rhs),
                          signature_bits=signature_bits)
    started = time.perf_counter()
    buckets: dict[int, list] = defaultdict(list)
    for r in lhs:
        buckets[signature_of(r.elements, signature_bits)].append(r)
    result: set[tuple[int, int]] = set()
    for s in rhs:
        for r in buckets.get(signature_of(s.elements, signature_bits), ()):
            metrics.signature_comparisons += 1
            metrics.candidates += 1
            metrics.set_comparisons += 1
            if r.elements == s.elements:
                result.add((r.tid, s.tid))
            else:
                metrics.false_positives += 1
    metrics.joining.seconds = time.perf_counter() - started
    metrics.result_size = len(result)
    return result, metrics
