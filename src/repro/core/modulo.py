"""Non-power-of-two partition counts via modulo folding.

DCJ and LSJ natively produce ``k = 2^l`` partitions.  The paper notes the
restriction is rarely harmful but "can be addressed using the modulo
approach suggested in [HM97]": run the partitioning with the next power
of two and fold leaf index ``i`` onto ``i mod k``.  Folding preserves
correctness — a joining pair co-located in leaf ``i`` stays co-located in
partition ``i mod k`` — while allowing any partition count.

:class:`ModuloFoldPartitioner` wraps any base partitioner; duplicates
created by folding (a tuple replicated to two leaves that collapse onto
the same folded partition) are merged, so folding can only reduce
replication, never increase it.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .dcj import DCJPartitioner
from .lsj import LSJPartitioner
from .partitioning import Partitioner

__all__ = ["ModuloFoldPartitioner", "dcj_with_any_k", "lsj_with_any_k"]


class ModuloFoldPartitioner(Partitioner):
    """Fold a base partitioner's assignments onto ``k`` partitions."""

    def __init__(self, base: Partitioner, num_partitions: int):
        if num_partitions > base.num_partitions:
            raise ConfigurationError(
                f"cannot fold {base.num_partitions} partitions up to "
                f"{num_partitions}; the base partitioner must produce at "
                "least as many"
            )
        super().__init__(num_partitions)
        self.base = base
        self.name = f"{base.name}-mod"

    def _fold(self, indices: list[int]) -> list[int]:
        return sorted({index % self.num_partitions for index in indices})

    def assign_r(self, elements: frozenset[int]) -> list[int]:
        return self._fold(self.base.assign_r(elements))

    def assign_s(self, elements: frozenset[int]) -> list[int]:
        return self._fold(self.base.assign_s(elements))

    def describe(self) -> str:
        return f"{self.base.describe()} folded to k={self.num_partitions}"


def _next_power_of_two(value: int) -> int:
    if value < 1:
        raise ConfigurationError(f"partition count must be >= 1, got {value}")
    return 1 << (value - 1).bit_length()


def dcj_with_any_k(
    num_partitions: int,
    theta_r: float,
    theta_s: float,
    family_kind: str = "bitstring",
    pattern: str = "alternating",
) -> Partitioner:
    """DCJ for an arbitrary partition count (e.g. the k = 48 the paper
    mentions), folding from the next power of two when needed."""
    power = _next_power_of_two(max(2, num_partitions))
    base = DCJPartitioner.for_cardinalities(
        power, theta_r, theta_s, family_kind, pattern
    )
    if power == num_partitions:
        return base
    return ModuloFoldPartitioner(base, num_partitions)


def lsj_with_any_k(
    num_partitions: int,
    theta_r: float,
    theta_s: float,
    family_kind: str = "bitstring",
) -> Partitioner:
    """LSJ for an arbitrary partition count via modulo folding."""
    power = _next_power_of_two(max(2, num_partitions))
    base = LSJPartitioner.for_cardinalities(power, theta_r, theta_s, family_kind)
    if power == num_partitions:
        return base
    return ModuloFoldPartitioner(base, num_partitions)
