"""The SQL-on-unnested-representation baseline.

Before PSJ, set containment joins were computed in plain SQL over the
*unnested* representation — one (tid, element) row per set member — and
shown by Ramasamy et al. [RPNK00] to be "very expensive"; the paper
builds on that finding ("naive or standard-SQL approaches to computing
set containment queries are very expensive").  The classic query is::

    SELECT r.tid, s.tid
    FROM   R_unnested r JOIN S_unnested s ON r.element = s.element
    GROUP  BY r.tid, s.tid
    HAVING COUNT(*) = (SELECT cardinality FROM R_card WHERE tid = r.tid)

i.e. ``r ⊆ s`` iff the number of elements they share equals ``|r|``.
This module executes that plan with real relational operators: unnest,
sort-merge equi-join on elements, hash aggregation, and the HAVING
filter, counting the intermediate tuples the plan materializes — the
quantity that makes the approach blow up (the element-level join produces
one row per *shared element pair*, not per candidate set pair).

Empty R-sets require the standard SQL workaround (COUNT(*) = 0 groups
never appear); they are handled explicitly, matching the semantics of the
other operators.
"""

from __future__ import annotations

import time
from collections import defaultdict

from .metrics import JoinMetrics
from .sets import Relation

__all__ = ["unnest", "sql_unnested_join"]


def unnest(relation: Relation) -> list[tuple[int, int]]:
    """The unnested representation: one (tid, element) row per member,
    sorted by element then tid (ready for merge joining)."""
    rows = [
        (element, row.tid) for row in relation for element in row.elements
    ]
    rows.sort()
    return [(tid, element) for element, tid in rows]


def sql_unnested_join(
    lhs: Relation, rhs: Relation
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Execute the SQL-unnested plan; returns (pairs, metrics).

    ``metrics.signature_comparisons`` is reused to report the size of the
    element-level join result (the plan's dominant intermediate), and
    ``metrics.candidates`` the number of (r, s) groups aggregated.
    """
    metrics = JoinMetrics(algorithm="SQL-unnested", num_partitions=1,
                          r_size=len(lhs), s_size=len(rhs))

    started = time.perf_counter()
    r_rows = unnest(lhs)
    s_rows = unnest(rhs)
    metrics.partitioning.seconds = time.perf_counter() - started

    # Sort-merge equi-join on element, counting matches per (r, s) group.
    started = time.perf_counter()
    counts: dict[tuple[int, int], int] = defaultdict(int)
    r_index = s_index = 0
    r_sorted = sorted(r_rows, key=lambda row: row[1])
    s_sorted = sorted(s_rows, key=lambda row: row[1])
    while r_index < len(r_sorted) and s_index < len(s_sorted):
        r_element = r_sorted[r_index][1]
        s_element = s_sorted[s_index][1]
        if r_element < s_element:
            r_index += 1
            continue
        if r_element > s_element:
            s_index += 1
            continue
        r_end = r_index
        while r_end < len(r_sorted) and r_sorted[r_end][1] == r_element:
            r_end += 1
        s_end = s_index
        while s_end < len(s_sorted) and s_sorted[s_end][1] == s_element:
            s_end += 1
        for r_tid, __ in r_sorted[r_index:r_end]:
            for s_tid, __ in s_sorted[s_index:s_end]:
                counts[(r_tid, s_tid)] += 1
                metrics.signature_comparisons += 1  # join output rows
        r_index, s_index = r_end, s_end
    metrics.joining.seconds = time.perf_counter() - started

    # HAVING COUNT(*) = |r|, plus the empty-set workaround.
    started = time.perf_counter()
    metrics.candidates = len(counts)
    result: set[tuple[int, int]] = set()
    for (r_tid, s_tid), shared in counts.items():
        metrics.set_comparisons += 1
        if shared == lhs[r_tid].cardinality:
            result.add((r_tid, s_tid))
    empty_r = [row.tid for row in lhs if not row.elements]
    if empty_r:
        for s in rhs:
            for r_tid in empty_r:
                result.add((r_tid, s.tid))
    metrics.verification.seconds = time.perf_counter() - started
    metrics.result_size = len(result)
    return result, metrics
