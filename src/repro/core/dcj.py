"""Divide-and-Conquer Set Join (DCJ) partitioning — the paper's contribution.

DCJ conceptually performs ``l = log2 k`` repartitioning steps.  Each step
applies one monotone boolean hash function ``h`` to every partition pair
``R_j ⋈ S_j`` through one of two operators (Table 5):

    α(R ⋈ S, h) = (R/h  ⋈ S/h)   ∪ (R/¬h ⋈ S)      -- splits R, replicates S
    β(R ⋈ S, h) = (R/¬h ⋈ S/¬h)  ∪ (R   ⋈ S/h)     -- splits S, replicates R

Correctness follows from monotonicity: under α, a superset ``s`` with
``h(s) = 0`` can only contain subsets with ``h(r) = 0``, so it is safe to
place it only in the bottom pair; symmetrically for β.

Operators are arranged in the alternating pattern the paper motivates:
the root applies α; an α-node's top child applies α and its bottom child β
(pattern α → α, β); a β-node's top child applies β and its bottom child α
(pattern β → β, α).  The intuition: always use β to split the partition
that was replicated by the previous step.  ``pattern="alpha"`` /
``"beta"`` disable the alternation for the ablation study.

The final assignment is computed *without materializing intermediate
partitions*: each tuple is routed down the operator tree directly, as the
paper's algorithmic specification (deferred to [MGM01]) requires.  Routing
rules per node, derived from Table 5 (top child carries path bit 1):

    ========  ======  =======================  =======================
    node op   h(set)  R-side destination       S-side destination
    ========  ======  =======================  =======================
    α         1       top                      top AND bottom
    α         0       bottom                   bottom
    β         1       bottom                   bottom
    β         0       top AND bottom           top
    ========  ======  =======================  =======================

Replication therefore happens for S-tuples at α-nodes (h=1) and for
R-tuples at β-nodes (h=0).  On the paper's running example (Tables 1-4,
k=8) this yields exactly Figure 2's result: 8 signature comparisons and
14 replicated signatures.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .hashing import BooleanHashFamily, make_family
from .partitioning import Partitioner

__all__ = ["DCJPartitioner", "ALTERNATION_PATTERNS"]

_ALPHA = 0
_BETA = 1

ALTERNATION_PATTERNS = ("alternating", "alpha", "beta")


def _child_op(op: int, went_top: bool, pattern: str) -> int:
    if pattern == "alpha":
        return _ALPHA
    if pattern == "beta":
        return _BETA
    if op == _ALPHA:
        return _ALPHA if went_top else _BETA
    return _BETA if went_top else _ALPHA


class DCJPartitioner(Partitioner):
    """DCJ configured with ``l`` hash functions for ``k = 2^l`` partitions."""

    name = "DCJ"

    def __init__(
        self,
        family: BooleanHashFamily,
        num_levels: int | None = None,
        pattern: str = "alternating",
    ):
        if pattern not in ALTERNATION_PATTERNS:
            raise ConfigurationError(
                f"unknown operator pattern {pattern!r}; "
                f"expected one of {ALTERNATION_PATTERNS}"
            )
        levels = num_levels if num_levels is not None else family.num_functions
        if levels < 1:
            raise ConfigurationError("DCJ needs at least one level")
        if levels > family.num_functions:
            raise ConfigurationError(
                f"{levels} levels requested but family has only "
                f"{family.num_functions} functions"
            )
        super().__init__(2**levels)
        self.family = family
        self.num_levels = levels
        self.pattern = pattern
        self.reset_route_stats()

    @classmethod
    def for_cardinalities(
        cls,
        num_partitions: int,
        theta_r: float,
        theta_s: float,
        family_kind: str = "bitstring",
        pattern: str = "alternating",
    ) -> "DCJPartitioner":
        """Build DCJ with an optimally tuned hash family.

        ``num_partitions`` must be a power of two ("DCJ can make effective
        use of k partitions only if k is a power of two").
        """
        levels = _levels_for(num_partitions)
        family = make_family(family_kind, levels, theta_r, theta_s)
        return cls(family, levels, pattern)

    def _route(self, mask: int, is_r_side: bool) -> list[int]:
        """Route one tuple down the operator tree; return its leaf indices.

        ``mask`` packs the hash function values (bit i = h_{i+1}).  The
        returned partition index accumulates path bits, level 0 being the
        most significant.
        """
        # (partial_index, node_op) states at the current level.
        states = [(0, _ALPHA if self.pattern != "beta" else _BETA)]
        alpha_evals = beta_evals = alpha_repls = beta_repls = 0
        for level in range(self.num_levels):
            fired = bool((mask >> level) & 1)
            next_states: list[tuple[int, int]] = []
            for index, op in states:
                top = (index << 1) | 1
                bottom = index << 1
                if op == _ALPHA:
                    alpha_evals += 1
                else:
                    beta_evals += 1
                if is_r_side:
                    if op == _ALPHA:
                        destinations = [True] if fired else [False]
                    else:
                        destinations = [False] if fired else [True, False]
                        if not fired:
                            beta_repls += 1
                else:
                    if op == _ALPHA:
                        destinations = [True, False] if fired else [False]
                        if fired:
                            alpha_repls += 1
                    else:
                        destinations = [False] if fired else [True]
                for went_top in destinations:
                    child = top if went_top else bottom
                    next_states.append(
                        (child, _child_op(op, went_top, self.pattern))
                    )
            states = next_states
        self._route_stats["alpha_evaluations"] += alpha_evals
        self._route_stats["beta_evaluations"] += beta_evals
        self._route_stats["alpha_replications"] += alpha_repls
        self._route_stats["beta_replications"] += beta_repls
        return [index for index, __ in states]

    def route_stats(self) -> dict:
        """α/β operator-node evaluation and replication counts since the
        last reset.

        Replication happens for S-tuples at α-nodes (h=1) and for
        R-tuples at β-nodes (h=0) — these counters expose which operator
        drives the paper's ``y`` for a given workload.
        """
        return dict(self._route_stats)

    def reset_route_stats(self) -> None:
        self._route_stats = {
            "alpha_evaluations": 0,
            "beta_evaluations": 0,
            "alpha_replications": 0,
            "beta_replications": 0,
        }

    def operator_nodes(self, max_levels: int | None = None):
        """The α/β operator tree as flat node descriptions, breadth-first.

        Each node dict carries:

        * ``path`` — the root-to-node bit string (top child = ``"1"``,
          bottom = ``"0"``; the root's path is ``""``),
        * ``level`` — 0-based tree level (= which repartitioning step),
        * ``op`` — ``"α"`` or ``"β"``,
        * ``function`` — the monotone hash function this node applies
          (``"h1"`` routes level 0, as in the paper's Tables 1–4).

        ``max_levels`` bounds the depth (the full tree has ``2^l − 1``
        nodes); the plan inspector renders the first few levels and
        elides the rest.
        """
        limit = self.num_levels if max_levels is None else min(
            max_levels, self.num_levels
        )
        root_op = _ALPHA if self.pattern != "beta" else _BETA
        nodes = []
        frontier = [("", root_op)]
        for level in range(limit):
            next_frontier = []
            for path, op in frontier:
                nodes.append({
                    "path": path,
                    "level": level,
                    "op": "α" if op == _ALPHA else "β",
                    "function": f"h{level + 1}",
                })
                if level + 1 < limit:
                    for went_top in (True, False):
                        next_frontier.append((
                            path + ("1" if went_top else "0"),
                            _child_op(op, went_top, self.pattern),
                        ))
            frontier = next_frontier
        return nodes

    def assign_r(self, elements: frozenset[int]) -> list[int]:
        return self._route(self.family.evaluate(elements), is_r_side=True)

    def assign_s(self, elements: frozenset[int]) -> list[int]:
        return self._route(self.family.evaluate(elements), is_r_side=False)

    def describe(self) -> str:
        return (
            f"DCJ(k={self.num_partitions}, levels={self.num_levels}, "
            f"pattern={self.pattern})"
        )


def _levels_for(num_partitions: int) -> int:
    if num_partitions < 2 or num_partitions & (num_partitions - 1):
        raise ConfigurationError(
            f"DCJ requires a power-of-two partition count >= 2, got {num_partitions}"
        )
    return num_partitions.bit_length() - 1
