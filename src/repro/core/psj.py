"""Partitioning Set Join (PSJ) — Ramasamy et al., VLDB 2000.

PSJ partitions on raw element values:

* each R-tuple goes to **one** partition determined by a single randomly
  chosen element of its set, taken modulo ``k``;
* each S-tuple is replicated to the partition of **every** element of its
  set (modulo ``k``), which guarantees correctness: if ``r ⊆ s``, the
  element that routed ``r`` is also an element of ``s``.

The empty set is a subset of everything, so an empty R-set must be
replicated to all partitions (an empty S-set joins only empty R-sets and
may go anywhere its subsets go — partition 0 by convention).

``hash_elements=True`` applies a deterministic integer hash before the
modulo, which is how non-uniform element domains are handled in practice;
the paper's description (element value mod k) is the default.
"""

from __future__ import annotations

import random

from .partitioning import Partitioner

__all__ = ["PSJPartitioner"]


def _mix(element: int) -> int:
    """Deterministic 64-bit integer hash (splitmix64 finalizer)."""
    x = (element + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class PSJPartitioner(Partitioner):
    """PSJ configured for ``k`` partitions.

    ``seed`` drives the random element choice on the R side; fixing it
    makes runs reproducible.  ``choose_element`` overrides the random
    choice entirely (used to pin the paper's Figure 1 example, where
    elements 5, 10, 3, 19 are chosen).
    """

    name = "PSJ"

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        hash_elements: bool = False,
        choose_element=None,
    ):
        super().__init__(num_partitions)
        self._rng = random.Random(seed)
        self.hash_elements = hash_elements
        self._choose_element = choose_element

    def _bucket(self, element: int) -> int:
        value = _mix(element) if self.hash_elements else element
        return value % self.num_partitions

    def assign_r(self, elements: frozenset[int]) -> list[int]:
        if not elements:
            return list(range(self.num_partitions))
        if self._choose_element is not None:
            element = self._choose_element(elements)
        else:
            element = self._rng.choice(sorted(elements))
        return [self._bucket(element)]

    def assign_s(self, elements: frozenset[int]) -> list[int]:
        if not elements:
            return [0]
        return sorted({self._bucket(element) for element in elements})
