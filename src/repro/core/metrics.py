"""Join execution metrics.

Every join run produces a :class:`JoinMetrics` recording the quantities
the paper's analysis is built on:

* ``signature_comparisons`` (``x`` in the paper's time model) and the
  derived comparison factor,
* ``replicated_signatures`` (``y``) and the derived replication factor,
* physical page I/O per phase,
* wall-clock time per phase (partitioning / joining / verification),
* candidate and false-positive counts from the signature filter.

These are what the calibration step (Section 5) fits the time model
``time(x, y, k) = c1·x + c2·y·k^c3`` against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.pager import IOStats

__all__ = ["PhaseMetrics", "JoinMetrics"]


@dataclass
class PhaseMetrics:
    """Wall time and physical I/O of one execution phase."""

    seconds: float = 0.0
    page_reads: int = 0
    page_writes: int = 0

    @classmethod
    def from_io_delta(cls, seconds: float, delta: IOStats) -> "PhaseMetrics":
        return cls(seconds, delta.page_reads, delta.page_writes)


@dataclass
class JoinMetrics:
    """Complete measurement record of one set-containment-join execution."""

    algorithm: str = ""
    num_partitions: int = 0
    r_size: int = 0
    s_size: int = 0
    signature_bits: int = 0

    signature_comparisons: int = 0
    replicated_signatures: int = 0
    #: partition entries held in memory-resident partitions (never written
    #: to disk); zero unless the operator's resident_partitions option is on.
    resident_signatures: int = 0
    candidates: int = 0
    false_positives: int = 0
    result_size: int = 0
    set_comparisons: int = 0

    partitioning: PhaseMetrics = field(default_factory=PhaseMetrics)
    joining: PhaseMetrics = field(default_factory=PhaseMetrics)
    verification: PhaseMetrics = field(default_factory=PhaseMetrics)

    @property
    def comparison_factor(self) -> float:
        """Measured comparison factor: x / (|R|·|S|)."""
        denominator = self.r_size * self.s_size
        return self.signature_comparisons / denominator if denominator else 0.0

    @property
    def replication_factor(self) -> float:
        """Measured replication factor: y / (|R| + |S|)."""
        denominator = self.r_size + self.s_size
        return self.replicated_signatures / denominator if denominator else 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.partitioning.seconds
            + self.joining.seconds
            + self.verification.seconds
        )

    @property
    def total_page_reads(self) -> int:
        return (
            self.partitioning.page_reads
            + self.joining.page_reads
            + self.verification.page_reads
        )

    @property
    def total_page_writes(self) -> int:
        return (
            self.partitioning.page_writes
            + self.joining.page_writes
            + self.verification.page_writes
        )

    @property
    def filter_precision(self) -> float:
        """Fraction of signature-filter candidates that truly join."""
        return self.result_size / self.candidates if self.candidates else 1.0

    def as_row(self) -> dict:
        """Flat dict for tabular reporting (benchmarks, EXPERIMENTS.md)."""
        return {
            "algorithm": self.algorithm,
            "k": self.num_partitions,
            "|R|": self.r_size,
            "|S|": self.s_size,
            "comparisons": self.signature_comparisons,
            "comp_factor": round(self.comparison_factor, 6),
            "replicated": self.replicated_signatures,
            "repl_factor": round(self.replication_factor, 6),
            "candidates": self.candidates,
            "false_positives": self.false_positives,
            "results": self.result_size,
            "t_partition_s": round(self.partitioning.seconds, 6),
            "t_join_s": round(self.joining.seconds, 6),
            "t_verify_s": round(self.verification.seconds, 6),
            "t_total_s": round(self.total_seconds, 6),
            "page_reads": self.total_page_reads,
            "page_writes": self.total_page_writes,
        }
