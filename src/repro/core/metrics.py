"""Join execution metrics.

Every join run produces a :class:`JoinMetrics` recording the quantities
the paper's analysis is built on:

* ``signature_comparisons`` (``x`` in the paper's time model) and the
  derived comparison factor,
* ``replicated_signatures`` (``y``) and the derived replication factor,
* physical page I/O per phase,
* wall-clock time per phase (partitioning / joining / verification),
* candidate and false-positive counts from the signature filter.

These are what the calibration step (Section 5) fits the time model
``time(x, y, k) = c1·x + c2·y·k^c3`` against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.pager import IOStats

__all__ = ["PhaseMetrics", "JoinMetrics"]


@dataclass
class PhaseMetrics:
    """Wall time and physical I/O of one execution phase."""

    seconds: float = 0.0
    page_reads: int = 0
    page_writes: int = 0

    @classmethod
    def from_io_delta(cls, seconds: float, delta: IOStats) -> "PhaseMetrics":
        return cls(seconds, delta.page_reads, delta.page_writes)

    def __add__(self, other: "PhaseMetrics") -> "PhaseMetrics":
        """Component-wise sum: combined time and I/O of two phase runs.

        Summing seconds treats the phases as sequential; a parallel
        caller (the partition-parallel engine) overwrites ``seconds``
        with the observed wall clock after merging.
        """
        if not isinstance(other, PhaseMetrics):
            return NotImplemented
        return PhaseMetrics(
            self.seconds + other.seconds,
            self.page_reads + other.page_reads,
            self.page_writes + other.page_writes,
        )


@dataclass
class JoinMetrics:
    """Complete measurement record of one set-containment-join execution."""

    algorithm: str = ""
    num_partitions: int = 0
    r_size: int = 0
    s_size: int = 0
    signature_bits: int = 0

    signature_comparisons: int = 0
    replicated_signatures: int = 0
    #: partition entries held in memory-resident partitions (never written
    #: to disk); zero unless the operator's resident_partitions option is on.
    resident_signatures: int = 0
    candidates: int = 0
    false_positives: int = 0
    result_size: int = 0
    set_comparisons: int = 0

    #: buffer-pool behaviour over the whole run (parent pool plus, for
    #: parallel runs, the workers' private pools).
    buffer_hits: int = 0
    buffer_misses: int = 0

    partitioning: PhaseMetrics = field(default_factory=PhaseMetrics)
    joining: PhaseMetrics = field(default_factory=PhaseMetrics)
    verification: PhaseMetrics = field(default_factory=PhaseMetrics)

    #: parallel runs only: each shard's joining-phase share (true wall
    #: seconds and page I/O per worker), in shard index order.  The
    #: aggregate ``joining`` phase keeps the parent's observed wall
    #: clock; this list preserves the per-shard timings the merge step
    #: previously discarded.
    shard_joining: list[PhaseMetrics] = field(default_factory=list)

    @classmethod
    def merge(cls, parts: "list[JoinMetrics]") -> "JoinMetrics":
        """Aggregate per-worker metrics into one record.

        The paper's accounting quantities are additive across workers by
        construction: every signature comparison (``x``) and every
        replicated signature (``y``) happens in exactly one worker, so
        summing preserves them exactly.  Phase metrics are summed with
        :meth:`PhaseMetrics.__add__` (summed seconds = total CPU-side
        work; the engine overwrites the joining phase's ``seconds`` with
        the parent's wall clock afterwards).

        ``candidates``/``result_size`` are summed too, which over-counts
        when the same pair is found by several workers (possible under
        DCJ's replication); callers that deduplicate across workers —
        the engine's merge layer — must recount those after the union.

        Header fields (algorithm, k, |R|, |S|, signature bits) are taken
        from the first record; merging records that disagree on them is
        a :class:`~repro.errors.ConfigurationError`.
        """
        from ..errors import ConfigurationError

        if not parts:
            raise ConfigurationError("cannot merge an empty list of metrics")
        first = parts[0]
        header = (first.algorithm, first.num_partitions, first.r_size,
                  first.s_size, first.signature_bits)
        merged = cls(*header)
        for part in parts:
            if (part.algorithm, part.num_partitions, part.r_size,
                    part.s_size, part.signature_bits) != header:
                raise ConfigurationError(
                    "refusing to merge metrics from different join "
                    f"configurations: {header} vs "
                    f"{(part.algorithm, part.num_partitions, part.r_size, part.s_size, part.signature_bits)}"
                )
            merged.signature_comparisons += part.signature_comparisons
            merged.replicated_signatures += part.replicated_signatures
            merged.resident_signatures += part.resident_signatures
            merged.candidates += part.candidates
            merged.false_positives += part.false_positives
            merged.result_size += part.result_size
            merged.set_comparisons += part.set_comparisons
            merged.buffer_hits += part.buffer_hits
            merged.buffer_misses += part.buffer_misses
            merged.partitioning = merged.partitioning + part.partitioning
            merged.joining = merged.joining + part.joining
            merged.verification = merged.verification + part.verification
            merged.shard_joining.extend(part.shard_joining)
        return merged

    @property
    def comparison_factor(self) -> float:
        """Measured comparison factor: x / (|R|·|S|)."""
        denominator = self.r_size * self.s_size
        return self.signature_comparisons / denominator if denominator else 0.0

    @property
    def replication_factor(self) -> float:
        """Measured replication factor: y / (|R| + |S|)."""
        denominator = self.r_size + self.s_size
        return self.replicated_signatures / denominator if denominator else 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.partitioning.seconds
            + self.joining.seconds
            + self.verification.seconds
        )

    @property
    def total_page_reads(self) -> int:
        return (
            self.partitioning.page_reads
            + self.joining.page_reads
            + self.verification.page_reads
        )

    @property
    def total_page_writes(self) -> int:
        return (
            self.partitioning.page_writes
            + self.joining.page_writes
            + self.verification.page_writes
        )

    @property
    def filter_precision(self) -> float:
        """Fraction of signature-filter candidates that truly join."""
        return self.result_size / self.candidates if self.candidates else 1.0

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of buffer-pool fetches served from memory."""
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0

    def as_row(self) -> dict:
        """Flat dict for tabular reporting (benchmarks, EXPERIMENTS.md)."""
        return {
            "algorithm": self.algorithm,
            "k": self.num_partitions,
            "|R|": self.r_size,
            "|S|": self.s_size,
            "comparisons": self.signature_comparisons,
            "comp_factor": round(self.comparison_factor, 6),
            "replicated": self.replicated_signatures,
            "repl_factor": round(self.replication_factor, 6),
            "candidates": self.candidates,
            "false_positives": self.false_positives,
            "results": self.result_size,
            "t_partition_s": round(self.partitioning.seconds, 6),
            "t_join_s": round(self.joining.seconds, 6),
            "t_verify_s": round(self.verification.seconds, 6),
            "t_total_s": round(self.total_seconds, 6),
            "page_reads": self.total_page_reads,
            "page_writes": self.total_page_writes,
            "buffer_hit_rate": round(self.buffer_hit_rate, 4),
        }
