"""Signature-Hash Join (SHJ) — Helmer & Moerkotte, VLDB 1997.

The best *main-memory* algorithm prior to PSJ/DCJ, included as the
baseline that LSJ extends to disk.  SHJ builds a hash table over R keyed
by a *short* signature (a handful of bits) and, for each S-tuple,
enumerates every bitwise submask of its signature and probes the table:
by signature inclusion, every joining R-tuple must sit under one of those
submasks.  Probe cost is ``2^{popcount(sig(s))}``, which is why SHJ keeps
signatures short — and why its disk-based lattice generalization (LSJ)
replicates so aggressively.

SHJ is main-memory only: it raises :class:`MemoryLimitExceeded` when the
inputs exceed the configured budget, the limitation that motivates the
paper's disk-based algorithms ("the algorithm proposed in [HM97] ...
cannot cope with large amounts of data").
"""

from __future__ import annotations

import time
from collections import defaultdict

from ..errors import ConfigurationError, MemoryLimitExceeded
from .lsj import submasks
from .metrics import JoinMetrics
from .sets import Relation
from .signatures import signature_of

__all__ = ["shj_join", "estimate_memory_bytes"]

_BYTES_PER_ELEMENT = 28  # CPython small-int object in a frozenset, amortized
_BYTES_PER_TUPLE = 96  # tuple object + table slot overhead


def estimate_memory_bytes(lhs: Relation, rhs: Relation) -> int:
    """Rough main-memory footprint of holding both relations plus the table."""
    elements = sum(row.cardinality for row in lhs) + sum(
        row.cardinality for row in rhs
    )
    return elements * _BYTES_PER_ELEMENT + (len(lhs) + len(rhs)) * _BYTES_PER_TUPLE


def shj_join(
    lhs: Relation,
    rhs: Relation,
    signature_bits: int = 10,
    memory_budget_bytes: int | None = None,
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Main-memory R ⋈⊆ S via signature hashing with submask probing.

    ``signature_bits`` must stay small (probing is exponential in the
    number of set bits); the default of 10 bits caps a probe at 1024
    lookups.
    """
    if not 1 <= signature_bits <= 24:
        raise ConfigurationError(
            f"SHJ signature width must be in 1..24 bits, got {signature_bits}"
        )
    if memory_budget_bytes is not None:
        needed = estimate_memory_bytes(lhs, rhs)
        if needed > memory_budget_bytes:
            raise MemoryLimitExceeded(
                f"SHJ needs ~{needed} bytes but the budget is "
                f"{memory_budget_bytes}; use a disk-based algorithm (LSJ/DCJ/PSJ)"
            )

    metrics = JoinMetrics(algorithm="SHJ", num_partitions=1,
                          r_size=len(lhs), s_size=len(rhs),
                          signature_bits=signature_bits)

    started = time.perf_counter()
    table: dict[int, list] = defaultdict(list)
    for r in lhs:
        table[signature_of(r.elements, signature_bits)].append(r)
    metrics.partitioning.seconds = time.perf_counter() - started

    started = time.perf_counter()
    result: set[tuple[int, int]] = set()
    for s in rhs:
        s_sig = signature_of(s.elements, signature_bits)
        for probe in submasks(s_sig):
            bucket = table.get(probe)
            if not bucket:
                continue
            for r in bucket:
                # Bucket signatures are ⊆ᵇ s_sig by construction, so each
                # probe hit is already a signature-filter candidate.
                metrics.signature_comparisons += 1
                metrics.candidates += 1
                metrics.set_comparisons += 1
                if r.elements <= s.elements:
                    result.add((r.tid, s.tid))
                else:
                    metrics.false_positives += 1
    metrics.joining.seconds = time.perf_counter() - started
    metrics.result_size = len(result)
    return result, metrics
