"""Set intersection (overlap) joins — the paper's other future-work item.

Section 7: "Developing efficient algorithms for other set join operators,
for instance the intersection join, is another challenging and mostly
unexplored research direction."  This module provides that operator:

    R ⋈∩ S = { (r, s) : |r ∩ s| >= t }           (t >= 1)

Two implementations:

* :func:`intersection_join_nested_loop` — the quadratic baseline.
* :func:`intersection_join` — element partitioning in the PSJ style, but
  replicating *both* sides on every element: if ``|r ∩ s| >= t >= 1``
  they share at least one element and meet in its partition.  Within a
  partition, a signature pre-filter (``sig(r) & sig(s) != 0`` is
  necessary for a non-empty intersection) cuts the exact-verification
  work.  For ``t > 1`` the filter stays sound because ``t`` shared
  elements always set at least one shared bit.

Unlike containment, intersection has no subset-side asymmetry to exploit,
so replication is ``θ``-fold on both relations — which is exactly why the
paper calls the operator challenging.
"""

from __future__ import annotations

import time
from collections import defaultdict

from ..errors import ConfigurationError
from .metrics import JoinMetrics
from .sets import Relation
from .signatures import DEFAULT_SIGNATURE_BITS, signature_of

__all__ = [
    "intersection_join",
    "intersection_join_nested_loop",
    "run_disk_intersection_join",
]


def _check_threshold(threshold: int) -> None:
    if threshold < 1:
        raise ConfigurationError(
            f"overlap threshold must be >= 1, got {threshold}"
        )


def intersection_join_nested_loop(
    lhs: Relation, rhs: Relation, threshold: int = 1
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Quadratic reference: test |r ∩ s| >= t for every pair."""
    _check_threshold(threshold)
    metrics = JoinMetrics(algorithm="IntersectNL", num_partitions=1,
                          r_size=len(lhs), s_size=len(rhs))
    started = time.perf_counter()
    result: set[tuple[int, int]] = set()
    for r in lhs:
        for s in rhs:
            metrics.set_comparisons += 1
            if len(r.elements & s.elements) >= threshold:
                result.add((r.tid, s.tid))
    metrics.joining.seconds = time.perf_counter() - started
    metrics.result_size = len(result)
    return result, metrics


def intersection_join(
    lhs: Relation,
    rhs: Relation,
    threshold: int = 1,
    num_partitions: int = 64,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Partitioned intersection join with a signature pre-filter.

    Each tuple of both relations is replicated to the partition of every
    one of its elements (``e mod k``), candidate pairs are generated
    within partitions after a shared-bit signature check, and candidates
    are verified exactly.  Distinct-partition deduplication keeps each
    pair verified once.
    """
    _check_threshold(threshold)
    if num_partitions < 1:
        raise ConfigurationError(
            f"number of partitions must be >= 1, got {num_partitions}"
        )
    metrics = JoinMetrics(algorithm="IntersectPSJ",
                          num_partitions=num_partitions,
                          r_size=len(lhs), s_size=len(rhs),
                          signature_bits=signature_bits)

    started = time.perf_counter()
    r_parts: dict[int, list] = defaultdict(list)
    s_parts: dict[int, list] = defaultdict(list)
    r_signatures: dict[int, int] = {}
    s_signatures: dict[int, int] = {}
    for relation, parts, signatures in (
        (lhs, r_parts, r_signatures),
        (rhs, s_parts, s_signatures),
    ):
        for row in relation:
            signatures[row.tid] = signature_of(row.elements, signature_bits)
            for index in {element % num_partitions for element in row.elements}:
                parts[index].append(row.tid)
    metrics.replicated_signatures = sum(map(len, r_parts.values())) + sum(
        map(len, s_parts.values())
    )
    metrics.partitioning.seconds = time.perf_counter() - started

    started = time.perf_counter()
    seen: set[tuple[int, int]] = set()
    for index, r_bucket in r_parts.items():
        s_bucket = s_parts.get(index)
        if not s_bucket:
            continue
        for r_tid in r_bucket:
            r_sig = r_signatures[r_tid]
            for s_tid in s_bucket:
                metrics.signature_comparisons += 1
                if r_sig & s_signatures[s_tid] == 0:
                    continue
                pair = (r_tid, s_tid)
                if pair not in seen:
                    seen.add(pair)
    metrics.candidates = len(seen)
    metrics.joining.seconds = time.perf_counter() - started

    started = time.perf_counter()
    result: set[tuple[int, int]] = set()
    for r_tid, s_tid in sorted(seen):
        metrics.set_comparisons += 1
        if len(lhs[r_tid].elements & rhs[s_tid].elements) >= threshold:
            result.add((r_tid, s_tid))
        else:
            metrics.false_positives += 1
    metrics.verification.seconds = time.perf_counter() - started
    metrics.result_size = len(result)
    return result, metrics


class _ElementPartitioner:
    """Both-sides element-value partitioner for the intersection join.

    Every tuple of either relation is replicated to the partition of each
    of its elements — the symmetric analogue of PSJ's S-side rule, correct
    because overlapping sets share at least one element.
    """

    name = "IntersectPSJ"

    def __init__(self, num_partitions: int):
        self.num_partitions = num_partitions

    def _assign(self, elements: frozenset[int]) -> list[int]:
        if not elements:
            return []  # empty sets intersect nothing
        return sorted({element % self.num_partitions for element in elements})

    assign_r = _assign
    assign_s = _assign


def run_disk_intersection_join(
    lhs: Relation,
    rhs: Relation,
    threshold: int = 1,
    num_partitions: int = 64,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
    buffer_pages: int = 512,
    path: str | None = None,
) -> tuple[set[tuple[int, int]], JoinMetrics]:
    """Disk-based R ⋈∩ S on the same testbed substrate as containment.

    Reuses the containment operator's machinery — stored relations,
    portioned partition stores, batched scans, candidate verification —
    with element partitioning on both sides and a shared-bit signature
    filter.  Demonstrates that the paper's testbed architecture carries
    over to the §7 future-work operator unchanged.
    """
    _check_threshold(threshold)
    if num_partitions < 1:
        raise ConfigurationError(
            f"number of partitions must be >= 1, got {num_partitions}"
        )
    from ..storage.partition_store import PartitionStore
    from .operator import Testbed

    with Testbed(path=path, buffer_pages=buffer_pages) as testbed:
        testbed.load(lhs, rhs)
        metrics = JoinMetrics(algorithm="IntersectPSJ-disk",
                              num_partitions=num_partitions,
                              r_size=len(lhs), s_size=len(rhs),
                              signature_bits=signature_bits)
        partitioner = _ElementPartitioner(num_partitions)
        signature_bytes = (signature_bits + 7) // 8

        started = time.perf_counter()
        before = testbed.disk.stats.snapshot()
        stores = []
        for relation_store, side in ((testbed.relation_r, "r"),
                                     (testbed.relation_s, "s")):
            store = PartitionStore(testbed.pool, signature_bytes,
                                   num_partitions)
            for tid, elements, __ in relation_store.scan():
                signature = signature_of(elements, signature_bits)
                for index in partitioner._assign(elements):
                    store.append(index, signature, tid)
            store.seal()
            stores.append(store)
        parts_r, parts_s = stores
        testbed.pool.flush_all()  # partition data reaches disk, as in the
        # containment operator's partition phase
        metrics.replicated_signatures = (
            parts_r.total_entries + parts_s.total_entries
        )
        from .metrics import PhaseMetrics

        metrics.partitioning = PhaseMetrics.from_io_delta(
            time.perf_counter() - started,
            testbed.disk.stats.delta(before),
        )

        started = time.perf_counter()
        before = testbed.disk.stats.snapshot()
        seen: set[tuple[int, int]] = set()
        for partition in range(num_partitions):
            if not parts_r.partition_size(partition):
                continue
            if not parts_s.partition_size(partition):
                continue
            r_entries = list(parts_r.scan_partition(partition))
            for s_batch in parts_s.scan_partition_batches(partition):
                for s_sig, s_tid in s_batch:
                    for r_sig, r_tid in r_entries:
                        metrics.signature_comparisons += 1
                        if r_sig & s_sig:
                            seen.add((r_tid, s_tid))
        metrics.candidates = len(seen)
        metrics.joining = PhaseMetrics.from_io_delta(
            time.perf_counter() - started,
            testbed.disk.stats.delta(before),
        )
        parts_r.drop()
        parts_s.drop()

        started = time.perf_counter()
        before = testbed.disk.stats.snapshot()
        pairs = sorted(seen)
        r_sets = testbed.relation_r.fetch_many(tid for tid, __ in pairs)
        s_sets = testbed.relation_s.fetch_many(tid for __, tid in pairs)
        result: set[tuple[int, int]] = set()
        for r_tid, s_tid in pairs:
            metrics.set_comparisons += 1
            if len(r_sets[r_tid] & s_sets[s_tid]) >= threshold:
                result.add((r_tid, s_tid))
            else:
                metrics.false_positives += 1
        metrics.verification = PhaseMetrics.from_io_delta(
            time.perf_counter() - started,
            testbed.disk.stats.delta(before),
        )
        metrics.result_size = len(result)
        return result, metrics
