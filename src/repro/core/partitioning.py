"""Partitioning interfaces and in-memory partition assignments.

A partitioning algorithm decomposes ``R ⋈⊆ S`` into ``k`` independent
subtasks ``R_i ⋈ S_i``.  It must be *correct*: every joining pair
``r ⊆ s`` must be co-located in at least one partition.  Its quality is
measured by

* the **comparison factor** -- Σᵢ |R_i|·|S_i| divided by |R|·|S| (CPU
  proxy), and
* the **replication factor** -- total signatures written across all
  partitions divided by |R| + |S| (I/O proxy).

Concrete partitioners (:mod:`repro.core.dcj`, ``psj``, ``lsj``) implement
:class:`Partitioner`; :class:`PartitionAssignment` materializes an
assignment in memory for analysis, worked examples and the model-accuracy
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ConfigurationError
from .sets import Relation

__all__ = ["Partitioner", "PartitionAssignment"]


class Partitioner:
    """One partitioning algorithm configured for ``k`` partitions."""

    name: str = "abstract"

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ConfigurationError(
                f"number of partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    def assign_r(self, elements: frozenset[int]) -> list[int]:
        """Partitions for a tuple of R (the subset side)."""
        raise NotImplementedError

    def assign_s(self, elements: frozenset[int]) -> list[int]:
        """Partitions for a tuple of S (the superset side)."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.name}(k={self.num_partitions})"

    def route_stats(self) -> dict:
        """Observability hook: routing counters accumulated since the
        last :meth:`reset_route_stats` (empty for stateless algorithms;
        DCJ reports per-operator α/β evaluation and replication counts).
        """
        return {}

    def reset_route_stats(self) -> None:
        """Zero the counters behind :meth:`route_stats` (no-op unless
        the algorithm keeps any)."""


@dataclass
class PartitionAssignment:
    """A materialized partition assignment with its quality measures."""

    num_partitions: int
    r_partitions: list[list[int]]  # per partition: tids from R
    s_partitions: list[list[int]]  # per partition: tids from S
    r_size: int
    s_size: int

    @classmethod
    def compute(
        cls, partitioner: Partitioner, lhs: Relation, rhs: Relation
    ) -> "PartitionAssignment":
        """Assign every tuple of both relations."""
        k = partitioner.num_partitions
        r_parts: list[list[int]] = [[] for __ in range(k)]
        s_parts: list[list[int]] = [[] for __ in range(k)]
        for row in lhs:
            for index in partitioner.assign_r(row.elements):
                r_parts[index].append(row.tid)
        for row in rhs:
            for index in partitioner.assign_s(row.elements):
                s_parts[index].append(row.tid)
        return cls(k, r_parts, s_parts, len(lhs), len(rhs))

    @property
    def comparisons(self) -> int:
        """Σ |R_i| · |S_i| — nested-loop signature comparisons."""
        return sum(
            len(r) * len(s) for r, s in zip(self.r_partitions, self.s_partitions)
        )

    @property
    def replicated_signatures(self) -> int:
        """Total signatures stored across all partitions of both relations."""
        return sum(map(len, self.r_partitions)) + sum(map(len, self.s_partitions))

    @property
    def comparison_factor(self) -> float:
        denominator = self.r_size * self.s_size
        return self.comparisons / denominator if denominator else 0.0

    @property
    def replication_factor(self) -> float:
        denominator = self.r_size + self.s_size
        return self.replicated_signatures / denominator if denominator else 0.0

    def candidate_pairs(self) -> set[tuple[int, int]]:
        """All (r_tid, s_tid) pairs co-located in at least one partition."""
        pairs: set[tuple[int, int]] = set()
        for r_part, s_part in zip(self.r_partitions, self.s_partitions):
            for r_tid in r_part:
                for s_tid in s_part:
                    pairs.add((r_tid, s_tid))
        return pairs

    def covers(self, joining_pairs: Iterable[tuple[int, int]]) -> bool:
        """Correctness check: does the assignment co-locate every joining pair?"""
        return set(joining_pairs) <= self.candidate_pairs()
