"""Monotone boolean hash functions for DCJ and LSJ partitioning.

A *monotone* boolean hash function ``h`` maps a set to {0, 1} such that
``h(x) = 1`` implies ``h(y) = 1`` for every superset ``y ⊇ x``.  Both DCJ
and LSJ partition the input relations using ``l`` such functions; the
partitioning is correct for any monotone family, and its efficiency is
governed by the functions' firing probabilities.

Two constructions from the paper are implemented:

* :class:`BitstringHashFamily` (Section 3) -- compute a ``b``-bit string by
  setting bit ``e mod b`` for each element ``e``, and let ``h_i`` fire iff
  bit ``i`` of the string is set.  For uniform elements each function fires
  with probability ``1 - (1 - 1/b)^|s|``, and choosing
  ``b = 1 / (1 - (λ/(1+λ))^{1/θ_R})`` makes that probability optimal.

* :class:`PrimeHashFamily` (Table 3 / [MGM01]) -- ``h_i`` fires iff the set
  contains an element divisible by one of a disjoint group of primes.
  The family of Table 3 (``h1={2}, h2={3}, h3={5,7}``) is available as
  :func:`paper_example_family`.

Optimality results (derived in DESIGN.md, property-tested against
simulation): the comparison factor of one DCJ/LSJ partitioning step is
``1 - q^λ + q^{1+λ}`` where ``q`` is the probability the function does
*not* fire on an R-set; it is minimized at ``q* = λ/(1+λ)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from ..errors import ConfigurationError

__all__ = [
    "BooleanHashFamily",
    "BitstringHashFamily",
    "PrimeHashFamily",
    "ExplicitHashFamily",
    "paper_example_family",
    "paper_table4_family",
    "optimal_no_fire_probability",
    "optimal_firing_probability",
    "optimal_bitstring_length",
    "step_comparison_factor",
    "make_family",
    "primes",
]


def optimal_no_fire_probability(lam: float) -> float:
    """Optimal probability q* = λ/(1+λ) that a function does NOT fire on an R-set."""
    if lam <= 0:
        raise ConfigurationError(f"cardinality ratio λ must be > 0, got {lam}")
    return lam / (1.0 + lam)


def optimal_firing_probability(lam: float) -> float:
    """Optimal firing probability 1/(1+λ) for R-sets (0.5 when λ=1)."""
    return 1.0 - optimal_no_fire_probability(lam)


def optimal_bitstring_length(theta_r: float, theta_s: float) -> float:
    """The paper's optimal bit-string length b = 1/(1-(λ/(1+λ))^(1/θ_R)).

    E.g. θ_R = 50, θ_S = 100 gives b ≈ 124, hence "up to l = 124 hash
    functions, i.e. up to k = 2^124 partitions if needed".
    """
    if theta_r <= 0 or theta_s <= 0:
        raise ConfigurationError("set cardinalities must be positive")
    lam = theta_s / theta_r
    q_star = optimal_no_fire_probability(lam)
    return 1.0 / (1.0 - q_star ** (1.0 / theta_r))


def step_comparison_factor(q: float, lam: float) -> float:
    """Comparison factor of one partitioning step: 1 - q^λ + q^(1+λ).

    ``q`` is the no-fire probability on R-sets; at ``q = λ/(1+λ)`` this
    reduces to the per-step base of Table 7's comp_DCJ.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"probability q must be in [0,1], got {q}")
    return 1.0 - q**lam + q ** (1.0 + lam)


class BooleanHashFamily:
    """Interface: a fixed ordered family of monotone boolean hash functions."""

    num_functions: int

    def evaluate(self, elements: Iterable[int]) -> int:
        """Return a bitmask; bit ``i`` is the value of ``h_{i+1}`` on the set.

        Monotonicity guarantee: ``evaluate(x) & ~evaluate(y) == 0`` whenever
        ``x ⊆ y`` (a superset can only turn more functions on).
        """
        raise NotImplementedError

    def evaluate_one(self, index: int, elements: Iterable[int]) -> bool:
        """Value of the single function ``h_{index+1}``."""
        if not 0 <= index < self.num_functions:
            raise ConfigurationError(
                f"function index {index} out of range 0..{self.num_functions - 1}"
            )
        return bool((self.evaluate(elements) >> index) & 1)


class BitstringHashFamily(BooleanHashFamily):
    """The Section 3 construction: b-bit strings, one function per chosen bit.

    ``indices`` selects which ``l`` of the ``b`` available bit positions are
    used, in order.  When omitted, positions are spread evenly over
    ``0..b-1`` (spreading avoids accidental correlation with small-domain
    inputs; with uniform elements any choice is equivalent).
    """

    def __init__(self, bitstring_length: int, indices: Sequence[int] | None = None,
                 num_functions: int | None = None):
        if bitstring_length < 1:
            raise ConfigurationError(
                f"bit-string length must be >= 1, got {bitstring_length}"
            )
        self.bitstring_length = bitstring_length
        if indices is None:
            count = num_functions if num_functions is not None else bitstring_length
            if count > bitstring_length:
                raise ConfigurationError(
                    f"cannot pick {count} functions from a {bitstring_length}-bit string"
                )
            stride = bitstring_length / count
            indices = [int(i * stride) for i in range(count)]
        unique = list(dict.fromkeys(indices))
        if len(unique) != len(indices):
            raise ConfigurationError("duplicate bit positions in hash family")
        for position in unique:
            if not 0 <= position < bitstring_length:
                raise ConfigurationError(
                    f"bit position {position} outside 0..{bitstring_length - 1}"
                )
        self.indices = list(indices)
        self.num_functions = len(self.indices)

    @classmethod
    def optimal(
        cls, theta_r: float, theta_s: float, num_functions: int
    ) -> "BitstringHashFamily":
        """Family with the optimal bit-string length for (θ_R, θ_S)."""
        length = max(num_functions, round(optimal_bitstring_length(theta_r, theta_s)))
        return cls(length, num_functions=num_functions)

    def firing_probability(self, cardinality: int) -> float:
        """P(h_i fires) for a random set of the given cardinality."""
        return 1.0 - (1.0 - 1.0 / self.bitstring_length) ** cardinality

    def evaluate(self, elements: Iterable[int]) -> int:
        bitstring = 0
        for element in elements:
            bitstring |= 1 << (element % self.bitstring_length)
        mask = 0
        for out_bit, position in enumerate(self.indices):
            if (bitstring >> position) & 1:
                mask |= 1 << out_bit
        return mask


class PrimeHashFamily(BooleanHashFamily):
    """The Table 3 construction: h_i fires iff some element is divisible by
    one of a disjoint group of primes."""

    def __init__(self, prime_groups: Sequence[Sequence[int]]):
        if not prime_groups:
            raise ConfigurationError("need at least one prime group")
        seen: set[int] = set()
        for group in prime_groups:
            if not group:
                raise ConfigurationError("empty prime group")
            for prime in group:
                if prime < 2:
                    raise ConfigurationError(f"invalid prime {prime}")
                if prime in seen:
                    raise ConfigurationError(
                        f"prime {prime} appears in more than one group; "
                        "groups must be disjoint for independence"
                    )
                seen.add(prime)
        self.prime_groups = [tuple(group) for group in prime_groups]
        self.num_functions = len(self.prime_groups)

    @classmethod
    def with_target_probability(
        cls, theta_r: float, num_functions: int, firing_probability: float
    ) -> "PrimeHashFamily":
        """Build groups of consecutive primes sized so each function fires
        with roughly the requested probability on a θ_R-element set.

        An element is divisible by prime p with probability ~1/p, so a set
        misses a group G with probability ``(1 - Σ_{p∈G} 1/p)^θ_R``; primes
        are accumulated until the group's firing probability reaches the
        target.  This is the [MGM01] "disjoint sets of primes" alternative
        to the bit-string construction.
        """
        if not 0.0 < firing_probability < 1.0:
            raise ConfigurationError("target firing probability must be in (0,1)")
        # Per-element miss rate needed so that a θ_R-element set fires with
        # the target probability: miss* = (1 - p*)^(1/θ_R).  Small primes
        # fire far too often (p=2 alone fires for almost every set), so
        # groups only use primes large enough that one prime does not
        # overshoot, accumulating until the target is reached.
        target_miss = (1.0 - firing_probability) ** (1.0 / theta_r)
        min_prime = max(3, math.ceil(1.0 / (1.0 - target_miss)))
        groups: list[list[int]] = []
        stream = primes()
        prime = next(stream)
        while prime < min_prime:
            prime = next(stream)

        def fire(miss_per_element: float) -> float:
            return 1.0 - max(miss_per_element, 0.0) ** theta_r

        for __ in range(num_functions):
            group: list[int] = []
            miss = 1.0
            while True:
                miss_with = miss - 1.0 / prime
                overshoots = fire(miss_with) >= firing_probability
                if overshoots and group:
                    # Keep whichever side of the target is closer; an
                    # unconsumed prime seeds the next group (disjointness).
                    with_error = abs(fire(miss_with) - firing_probability)
                    without_error = abs(fire(miss) - firing_probability)
                    if without_error <= with_error:
                        break
                group.append(prime)
                miss = miss_with
                prime = next(stream)
                if overshoots:
                    break
            groups.append(group)
        return cls(groups)

    def firing_probability(self, index: int, cardinality: int) -> float:
        """Estimated P(h_{index+1} fires) on a random set of this cardinality."""
        miss = 1.0
        for prime in self.prime_groups[index]:
            miss -= 1.0 / prime
        return 1.0 - max(miss, 0.0) ** cardinality

    def evaluate(self, elements: Iterable[int]) -> int:
        mask = 0
        full = (1 << self.num_functions) - 1
        for element in elements:
            for index, group in enumerate(self.prime_groups):
                if not (mask >> index) & 1 and any(
                    element % prime == 0 for prime in group
                ):
                    mask |= 1 << index
            if mask == full:
                break
        return mask


class ExplicitHashFamily(BooleanHashFamily):
    """A family defined by an explicit set → mask table.

    Used by the worked-example reproduction to pin the exact hash values
    printed in the paper's Table 4 (which contains a typo: by Table 3's
    definition ``h3`` fires for ``b = {10, 13}`` since 10 is divisible by
    5, but the table — and therefore Figure 2's counts — lists 0).
    The caller is responsible for the table being monotone.
    """

    def __init__(self, table: dict[frozenset[int], int], num_functions: int):
        if num_functions < 1:
            raise ConfigurationError("need at least one hash function")
        self.table = {frozenset(key): mask for key, mask in table.items()}
        self.num_functions = num_functions

    def evaluate(self, elements: Iterable[int]) -> int:
        key = frozenset(elements)
        if key not in self.table:
            raise ConfigurationError(f"set {sorted(key)} not in explicit hash table")
        return self.table[key]


def paper_example_family() -> PrimeHashFamily:
    """Table 3's family: h1 = {2}, h2 = {3}, h3 = {5, 7}."""
    return PrimeHashFamily([(2,), (3,), (5, 7)])


def paper_table4_family() -> ExplicitHashFamily:
    """The exact hash values printed in Table 4 for the running example.

    Differs from evaluating :func:`paper_example_family` in one entry —
    the paper's typo for set ``b`` (see :class:`ExplicitHashFamily`) —
    and is what reproduces Figure 2's counts of 8 comparisons and
    14 replicated signatures verbatim.
    """
    return ExplicitHashFamily(
        {
            frozenset({1, 5}): 0b100,      # a: h1=0 h2=0 h3=1
            frozenset({10, 13}): 0b001,    # b: h1=1 h2=0 h3=0 (paper's value)
            frozenset({1, 3}): 0b010,      # c: h1=0 h2=1 h3=0
            frozenset({8, 19}): 0b001,     # d: h1=1 h2=0 h3=0
            frozenset({1, 5, 7}): 0b100,   # A: h1=0 h2=0 h3=1
            frozenset({8, 10, 13}): 0b101, # B: h1=1 h2=0 h3=1
            frozenset({1, 3, 13}): 0b010,  # C: h1=0 h2=1 h3=0
            frozenset({2, 3, 4}): 0b011,   # D: h1=1 h2=1 h3=0
        },
        num_functions=3,
    )


def primes() -> Iterator[int]:
    """Yield primes 2, 3, 5, ... (incremental trial division)."""
    found: list[int] = []
    candidate = 2
    while True:
        limit = math.isqrt(candidate)
        if all(p > limit or candidate % p for p in found):
            found.append(candidate)
            yield candidate
        candidate += 1 if candidate == 2 else 2


def make_family(
    kind: str,
    num_functions: int,
    theta_r: float,
    theta_s: float,
) -> BooleanHashFamily:
    """Factory for the two hash-function constructions.

    ``kind`` is ``"bitstring"`` (default choice everywhere in the paper's
    experiments) or ``"primes"``.
    """
    if num_functions < 1:
        raise ConfigurationError("need at least one hash function")
    if kind == "bitstring":
        return BitstringHashFamily.optimal(theta_r, theta_s, num_functions)
    if kind == "primes":
        lam = theta_s / theta_r
        return PrimeHashFamily.with_target_probability(
            theta_r, num_functions, optimal_firing_probability(lam)
        )
    raise ConfigurationError(f"unknown hash family kind {kind!r}")
