"""Set signatures and the bitwise-inclusion filter.

A signature is a fixed-width bit vector computed from a set's elements:
element ``e`` turns on bit ``e mod width`` (Table 2 of the paper uses
width 4; the experiments use 160 bits).  Signatures preserve containment
one way:

    x ⊆ y  ⟹  sig(x) ⊆ᵇ sig(y)

so ``sig(x) & ~sig(y) == 0`` is a sound *filter*: it can produce false
positives (candidate pairs that are not really contained) but never false
negatives.  All join algorithms here compare signatures first and verify
surviving candidates against the actual sets.

Signatures are represented as Python ints (arbitrary precision makes the
160-bit signatures of the paper's experiments natural), with an optional
numpy packing used by the vectorized join engine.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "DEFAULT_SIGNATURE_BITS",
    "signature_of",
    "signatures_of",
    "bitwise_included",
    "popcount",
    "expected_bit_density",
    "false_positive_probability",
    "recommend_signature_bits",
    "pack_signatures",
    "included_in_any_matrix",
]

DEFAULT_SIGNATURE_BITS = 160


def signature_of(elements: Iterable[int], bits: int = DEFAULT_SIGNATURE_BITS) -> int:
    """Compute the signature of a set as an integer bit vector."""
    if bits < 1:
        raise ConfigurationError(f"signature width must be >= 1, got {bits}")
    signature = 0
    for element in elements:
        signature |= 1 << (element % bits)
    return signature


def signatures_of(
    sets: Iterable[Iterable[int]], bits: int = DEFAULT_SIGNATURE_BITS
) -> list[int]:
    """Signatures for many sets."""
    return [signature_of(elements, bits) for elements in sets]


def bitwise_included(sig_x: int, sig_y: int) -> bool:
    """The ⊆ᵇ predicate: every bit of ``sig_x`` is set in ``sig_y``.

    Implemented exactly as the paper suggests: ``sig(x) & ¬sig(y) == 0``.
    """
    return sig_x & ~sig_y == 0


def popcount(signature: int) -> int:
    """Number of set bits."""
    return signature.bit_count()


def expected_bit_density(cardinality: int, bits: int) -> float:
    """Probability that a given bit is set for a random set of this size.

    Equals ``1 - (1 - 1/bits)**cardinality`` under the paper's uniform-
    element assumption; also the firing probability of the bit-string hash
    functions of Section 3.
    """
    if bits < 1:
        raise ConfigurationError("bits must be >= 1")
    return 1.0 - (1.0 - 1.0 / bits) ** cardinality


def false_positive_probability(
    theta_r: int, theta_s: int, bits: int
) -> float:
    """Estimated probability that sig(r) ⊆ᵇ sig(s) for non-joining r, s.

    Each of r's (up to θ_R distinct) bits must independently hit one of
    s's set bits, whose density is :func:`expected_bit_density`.  This is
    the standard signature-file estimate [FC84]; it drives the choice of a
    signature width "large enough so that none or very few false positives
    are produced".
    """
    density = expected_bit_density(theta_s, bits)
    return density**theta_r


def recommend_signature_bits(
    theta_r: float,
    theta_s: float,
    pairs_compared: float,
    target_false_positives: float = 1.0,
    max_bits: int = 4096,
) -> int:
    """Smallest signature width keeping expected false positives low.

    The paper fixes 160 bits after noting that "the exact choice of the
    signature size is less critical, as long as the signatures are large
    enough so that none or very few false positives are produced".  This
    advisor makes that choice mechanical: find the smallest width (rounded
    up to whole bytes) such that the expected number of false positives
    over ``pairs_compared`` signature comparisons stays below the target.
    """
    if pairs_compared < 0:
        raise ConfigurationError("pairs_compared must be non-negative")
    if target_false_positives <= 0:
        raise ConfigurationError("target_false_positives must be positive")
    bits = 8
    while bits <= max_bits:
        expected = pairs_compared * false_positive_probability(
            int(theta_r), int(theta_s), bits
        )
        if expected <= target_false_positives:
            return bits
        bits += 8
    return max_bits


def pack_signatures(signatures: Sequence[int], bits: int) -> np.ndarray:
    """Pack integer signatures into a (n, words) uint64 matrix.

    Word 0 holds the least-significant 64 bits.  Used by the vectorized
    comparison engine.
    """
    words = (bits + 63) // 64
    packed = np.zeros((len(signatures), words), dtype=np.uint64)
    mask = (1 << 64) - 1
    for row, signature in enumerate(signatures):
        for word in range(words):
            packed[row, word] = (signature >> (64 * word)) & mask
    return packed


def included_in_any_matrix(r_sig: int, packed_s: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized ⊆ᵇ of one R signature against a packed S matrix.

    Returns a boolean vector: entry j is True iff ``r_sig ⊆ᵇ S[j]``.
    """
    words = packed_s.shape[1]
    mask = (1 << 64) - 1
    result = np.ones(packed_s.shape[0], dtype=bool)
    for word in range(words):
        r_word = np.uint64((r_sig >> (64 * word)) & mask)
        result &= (r_word & ~packed_s[:, word]) == 0
    return result
