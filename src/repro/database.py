"""A small persistent database of set-valued relations.

The paper implements its join as an operator over relations stored in a
storage manager; this module provides the surrounding shell a downstream
user needs: a single file holding many named relations (catalog + B-trees),
with set containment joins — planned by the paper's optimizer — running
directly over the stored data.

    from repro.database import SetJoinDatabase

    with SetJoinDatabase.open("courses.db") as db:
        db.create_relation("prereq", prereq_relation)
        db.create_relation("attended", attended_relation)
        print(db.explain("prereq", "attended"))
        pairs, metrics = db.join("prereq", "attended")

``path=None`` gives an in-memory database with identical behaviour.
"""

from __future__ import annotations

import random
from typing import Iterable

from .analysis.timemodel import PAPER_TIME_MODEL, TimeModel
from .core.metrics import JoinMetrics
from .core.operator import SetContainmentJoin, Testbed
from .core.optimizer import JoinPlan, plan_from_statistics
from .core.sets import Relation, SetTuple
from .core.signatures import DEFAULT_SIGNATURE_BITS
from .errors import ConfigurationError
from .storage.buffer import BufferPool
from .storage.catalog import Catalog
from .storage.pager import FileDiskManager, InMemoryDiskManager
from .storage.relation_store import DEFAULT_PAYLOAD_SIZE, RelationStore

__all__ = ["SetJoinDatabase"]

_STATS_SAMPLE = 200


class SetJoinDatabase:
    """Catalog of named, disk-resident set-valued relations."""

    def __init__(
        self,
        path: str | None = None,
        page_size: int = 4096,
        buffer_pages: int = 512,
        buffer_policy: str = "lru",
        model: TimeModel = PAPER_TIME_MODEL,
    ):
        if path is None:
            self.disk = InMemoryDiskManager(page_size)
        else:
            self.disk = FileDiskManager(path, page_size)
        self.pool = BufferPool(self.disk, capacity=buffer_pages,
                               policy=buffer_policy)
        self.catalog = Catalog(self.pool)
        self.model = model
        self._closed = False

    @classmethod
    def open(cls, path: str | None = None, **kwargs) -> "SetJoinDatabase":
        """Open (creating if needed) a database file."""
        return cls(path, **kwargs)

    # ------------------------------------------------------------------
    # Relation management
    # ------------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        rows: Relation | Iterable[tuple[int, Iterable[int]]],
        payload_size: int = DEFAULT_PAYLOAD_SIZE,
    ) -> int:
        """Store a new named relation; returns the tuple count.

        ``rows`` is either an in-memory :class:`Relation` or an iterable of
        ``(tid, elements)`` pairs (streamed; never fully materialized).
        """
        self._check_open()
        if name in self.catalog:
            raise ConfigurationError(f"relation {name!r} already exists")
        store = RelationStore.create(self.pool, name=name)
        if isinstance(rows, Relation):
            rows = ((row.tid, row.elements) for row in rows)
        count = store.bulk_load(rows, payload_size)
        self.catalog.register(name, store.meta_page_id, count)
        self.pool.flush_all()
        return count

    def get_store(self, name: str) -> RelationStore:
        """The stored relation's access object."""
        self._check_open()
        entry = self.catalog.lookup(name)
        if entry is None:
            raise ConfigurationError(f"no relation named {name!r}")
        meta_page_id, __ = entry
        return RelationStore(self.pool, meta_page_id, name=name)

    def read_relation(self, name: str) -> Relation:
        """Materialize a stored relation in memory."""
        store = self.get_store(name)
        relation = Relation(name=name)
        for tid, elements, __ in store.scan():
            relation.add(SetTuple(tid, elements))
        return relation

    def drop_relation(self, name: str) -> None:
        """Remove a relation from the catalog and free its pages."""
        self._check_open()
        entry = self.catalog.lookup(name)
        if entry is None:
            raise ConfigurationError(f"no relation named {name!r}")
        meta_page_id, __ = entry
        from .storage.btree import BTree

        BTree(self.pool, meta_page_id).destroy()
        self.catalog.unregister(name)
        self.pool.flush_all()

    def relation_names(self) -> list[str]:
        self._check_open()
        return list(self.catalog.names())

    def relation_size(self, name: str) -> int:
        entry = self.catalog.lookup(name)
        if entry is None:
            raise ConfigurationError(f"no relation named {name!r}")
        return entry[1]

    # ------------------------------------------------------------------
    # Planning and joining
    # ------------------------------------------------------------------

    def _statistics(self, name: str, seed: int = 0) -> tuple[int, float]:
        """(size, sampled average cardinality) for one stored relation."""
        size = self.relation_size(name)
        store = self.get_store(name)
        rng = random.Random(seed)
        cardinalities = []
        for index, (__, elements, __payload) in enumerate(store.scan()):
            if index >= _STATS_SAMPLE * 4:
                break
            if index < _STATS_SAMPLE or rng.random() < 0.25:
                cardinalities.append(len(elements))
        if not cardinalities:
            return size, 0.0
        return size, sum(cardinalities) / len(cardinalities)

    def plan(self, r_name: str, s_name: str) -> JoinPlan:
        """Run the optimizer over the stored relations' statistics."""
        self._check_open()
        r_size, theta_r = self._statistics(r_name)
        s_size, theta_s = self._statistics(s_name, seed=1)
        return plan_from_statistics(
            r_size, s_size, theta_r, theta_s, self.model
        )

    def explain(self, r_name: str, s_name: str) -> str:
        """EXPLAIN text for the join of two stored relations."""
        return self.plan(r_name, s_name).explain()

    def join(
        self,
        r_name: str,
        s_name: str,
        algorithm: str = "auto",
        num_partitions: int | None = None,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        engine: str = "numpy",
        seed: int = 0,
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        """Set containment join of two stored relations (R ⊆ S side order).

        Runs directly over the stored B-trees; temporary partition data is
        written into the same file and reclaimed afterwards.
        """
        self._check_open()
        if algorithm == "auto":
            partitioner = self.plan(r_name, s_name).build_partitioner(seed=seed)
        else:
            from .core.modulo import dcj_with_any_k, lsj_with_any_k
            from .core.psj import PSJPartitioner

            k = num_partitions or 32
            __, theta_r = self._statistics(r_name)
            __, theta_s = self._statistics(s_name, seed=1)
            theta_r = max(theta_r, 1.0)
            theta_s = max(theta_s, 1.0)
            if algorithm == "PSJ":
                partitioner = PSJPartitioner(k, seed=seed)
            elif algorithm == "DCJ":
                partitioner = dcj_with_any_k(k, theta_r, theta_s)
            elif algorithm == "LSJ":
                partitioner = lsj_with_any_k(k, theta_r, theta_s)
            else:
                raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        testbed = Testbed.from_components(
            self.disk, self.pool, self.get_store(r_name), self.get_store(s_name)
        )
        join = SetContainmentJoin(
            testbed, partitioner, signature_bits=signature_bits, engine=engine
        )
        return join.run(cold_cache=False)

    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("database is closed")

    def close(self) -> None:
        if not self._closed:
            self.pool.flush_all()
            self.disk.close()
            self._closed = True

    def __enter__(self) -> "SetJoinDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
