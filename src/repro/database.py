"""A small persistent database of set-valued relations.

The paper implements its join as an operator over relations stored in a
storage manager; this module provides the surrounding shell a downstream
user needs: a single file holding many named relations (catalog + B-trees),
with set containment joins — planned by the paper's optimizer — running
directly over the stored data.

    from repro.database import SetJoinDatabase

    with SetJoinDatabase.open("courses.db") as db:
        db.create_relation("prereq", prereq_relation)
        db.create_relation("attended", attended_relation)
        print(db.explain("prereq", "attended"))
        pairs, metrics = db.join("prereq", "attended")

``path=None`` gives an in-memory database with identical behaviour.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterable, Iterator

from .analysis.timemodel import PAPER_TIME_MODEL, TimeModel
from .core.metrics import JoinMetrics
from .core.operator import SetContainmentJoin, Testbed
from .core.optimizer import JoinPlan, plan_from_statistics
from .core.sets import Relation, SetTuple
from .core.signatures import DEFAULT_SIGNATURE_BITS
from .errors import ConfigurationError
from .storage.buffer import BufferPool
from .storage.catalog import Catalog
from .storage.pager import DiskManager, FileDiskManager, InMemoryDiskManager
from .storage.relation_store import DEFAULT_PAYLOAD_SIZE, RelationStore
from .storage.wal import WALDiskManager, WriteAheadLog

__all__ = ["SetJoinDatabase"]

_STATS_SAMPLE = 200


class SetJoinDatabase:
    """Catalog of named, disk-resident set-valued relations.

    With ``durable=True`` (the default) the disk manager is wrapped in a
    :class:`WALDiskManager`: catalog-changing operations
    (:meth:`create_relation`, :meth:`drop_relation`, and initial catalog
    creation) run as write-ahead-logged transactions, so a crash at any
    point leaves the file openable in either the old or the new state.
    Opening a database replays or rolls back the sidecar ``<path>.wal``
    log automatically.  Temporary join-partition data is deliberately
    *not* logged: it is reconstructible, so crash-in-join costs at most
    leaked pages, never a corrupt catalog.
    """

    def __init__(
        self,
        path: str | None = None,
        page_size: int = 4096,
        buffer_pages: int = 512,
        buffer_policy: str = "lru",
        model: TimeModel = PAPER_TIME_MODEL,
        durable: bool = True,
        disk: DiskManager | None = None,
        wal: WriteAheadLog | None = None,
        model_store=None,
        verify_checksums: bool = True,
    ):
        if disk is None:
            if path is None:
                disk = InMemoryDiskManager(
                    page_size, verify_checksums=verify_checksums)
            else:
                disk = FileDiskManager(
                    path, page_size, verify_checksums=verify_checksums)
        if durable:
            if wal is None and path is not None:
                wal = WriteAheadLog(path + ".wal", disk.page_size)
            # Recovery (replay committed, discard torn) runs here.
            self.disk: DiskManager = WALDiskManager(disk, wal)
        else:
            self.disk = disk
        self.pool = BufferPool(self.disk, capacity=buffer_pages,
                               policy=buffer_policy)
        # ``model_store`` (a path or a ModelStore) plugs the database into
        # the closed calibration loop: planning always uses the store's
        # freshest recalibrated model instead of the static constants.
        self.model_store = None
        if model_store is not None:
            from .obs.adaptive import ModelStore

            self.model_store = (
                model_store if isinstance(model_store, ModelStore)
                else ModelStore(model_store, base_model=model)
            )
            model = self.model_store.active
        self.model = model
        self._closed = False
        if self.disk.num_pages == 0:
            with self._atomic():
                self.catalog = Catalog(self.pool)
        else:
            self.catalog = Catalog(self.pool)

    @classmethod
    def open(cls, path: str | None = None, **kwargs) -> "SetJoinDatabase":
        """Open (creating if needed) a database file, recovering any
        interrupted transaction from its write-ahead log."""
        return cls(path, **kwargs)

    @classmethod
    def open_sharded(cls, path: str | None = None,
                     shards: int | None = None, **kwargs):
        """Open a :class:`~repro.dist.ShardedDatabase`: ``shards``
        independent databases (``<path>.shard<i>`` each with its own
        WAL and buffer pool) behind a coordinator with the same
        create/drop/join/probe/explain surface as a single database.

        An existing sharded layout (``<path>.shards.json`` manifest)
        reopens with ``shards`` omitted; see :mod:`repro.dist`.
        """
        from .dist.coordinator import ShardedDatabase

        return ShardedDatabase.open(path, shards=shards, **kwargs)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @contextmanager
    def _atomic(self) -> Iterator[None]:
        """Run the enclosed mutations as one crash-atomic transaction.

        Without a WAL disk manager (``durable=False``) this degrades to
        the historical best-effort behaviour: mutate, then flush.
        """
        disk = self.disk
        if not isinstance(disk, WALDiskManager) or disk.in_transaction:
            yield
            self.pool.flush_all()
            return
        disk.begin()
        try:
            yield
            self.pool.flush_all()
            disk.commit()
        except BaseException:
            # Cached frames may hold uncommitted images; drop them before
            # rolling back so nothing dirty can ever be flushed later.
            self.pool.invalidate()
            if disk.in_transaction:
                disk.rollback()
            if not disk.wedged and disk.num_pages:
                # B-tree handles cache their root ids; rebuild the catalog
                # from the durable state.
                self.catalog = Catalog(self.pool)
            raise

    # ------------------------------------------------------------------
    # Relation management
    # ------------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        rows: Relation | Iterable[tuple[int, Iterable[int]]],
        payload_size: int = DEFAULT_PAYLOAD_SIZE,
    ) -> int:
        """Store a new named relation; returns the tuple count.

        ``rows`` is either an in-memory :class:`Relation` or an iterable of
        ``(tid, elements)`` pairs (streamed; never fully materialized).
        """
        self._check_open()
        if name in self.catalog:
            raise ConfigurationError(f"relation {name!r} already exists")
        if isinstance(rows, Relation):
            rows = ((row.tid, row.elements) for row in rows)
        with self._atomic():
            store = RelationStore.create(self.pool, name=name)
            count = store.bulk_load(rows, payload_size)
            self.catalog.register(name, store.meta_page_id, count)
        return count

    def get_store(self, name: str) -> RelationStore:
        """The stored relation's access object."""
        self._check_open()
        entry = self.catalog.lookup(name)
        if entry is None:
            raise ConfigurationError(f"no relation named {name!r}")
        meta_page_id, __ = entry
        return RelationStore(self.pool, meta_page_id, name=name)

    def read_relation(self, name: str) -> Relation:
        """Materialize a stored relation in memory."""
        store = self.get_store(name)
        relation = Relation(name=name)
        for tid, elements, __ in store.scan():
            relation.add(SetTuple(tid, elements))
        return relation

    def drop_relation(self, name: str) -> None:
        """Remove a relation from the catalog and free its pages."""
        self._check_open()
        entry = self.catalog.lookup(name)
        if entry is None:
            raise ConfigurationError(f"no relation named {name!r}")
        meta_page_id, __ = entry
        from .storage.btree import BTree

        with self._atomic():
            BTree(self.pool, meta_page_id).destroy()
            self.catalog.unregister(name)

    def relation_names(self) -> list[str]:
        self._check_open()
        return list(self.catalog.names())

    def relation_size(self, name: str) -> int:
        entry = self.catalog.lookup(name)
        if entry is None:
            raise ConfigurationError(f"no relation named {name!r}")
        return entry[1]

    # ------------------------------------------------------------------
    # Planning and joining
    # ------------------------------------------------------------------

    def _statistics(self, name: str, seed: int = 0) -> tuple[int, float]:
        """(size, sampled average cardinality) for one stored relation."""
        size = self.relation_size(name)
        store = self.get_store(name)
        rng = random.Random(seed)
        cardinalities = []
        for index, (__, elements, __payload) in enumerate(store.scan()):
            if index >= _STATS_SAMPLE * 4:
                break
            if index < _STATS_SAMPLE or rng.random() < 0.25:
                cardinalities.append(len(elements))
        if not cardinalities:
            return size, 0.0
        return size, sum(cardinalities) / len(cardinalities)

    def refresh_model(self) -> TimeModel:
        """Re-adopt the model store's freshest version (no-op without a
        store).  Call after an external recalibration so a long-lived
        session plans with the new constants without reopening."""
        if self.model_store is not None:
            self.model = self.model_store.active
        return self.model

    def plan(self, r_name: str, s_name: str,
             drift_history=None) -> JoinPlan:
        """Run the optimizer over the stored relations' statistics.

        ``drift_history`` (records, a JSONL path, or precomputed
        factors) makes the selection drift-aware — see
        :func:`repro.core.optimizer.plan_from_statistics`.
        """
        self._check_open()
        self.refresh_model()
        r_size, theta_r = self._statistics(r_name)
        s_size, theta_s = self._statistics(s_name, seed=1)
        return plan_from_statistics(
            r_size, s_size, theta_r, theta_s, self.model,
            drift_history=drift_history,
        )

    def explain(self, r_name: str, s_name: str) -> str:
        """EXPLAIN text for the join of two stored relations."""
        return self.plan(r_name, s_name).explain()

    def explain_plan(
        self,
        r_name: str,
        s_name: str,
        algorithm: str = "auto",
        num_partitions: int | None = None,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        engine: str = "numpy",
        seed: int = 0,
    ):
        """The annotated predicted plan tree for a join of stored relations.

        Like :meth:`explain` but through the plan inspector
        (:mod:`repro.obs.explain`): the phase tree with the analytical
        x/y/page/time predictions and, for DCJ, the α/β operator tree.
        Returns an :class:`~repro.obs.explain.ExplainReport` (call
        ``.render()`` for text).  Nothing is executed.
        """
        from .obs.explain import build_plan_from_statistics

        self._check_open()
        r_size, theta_r = self._statistics(r_name)
        s_size, theta_s = self._statistics(s_name, seed=1)
        if algorithm == "auto":
            plan = plan_from_statistics(
                r_size, s_size, theta_r, theta_s, self.model
            )
            algorithm, k = plan.algorithm, plan.k
            partitioner = plan.build_partitioner(seed=seed)
        else:
            from .core.modulo import dcj_with_any_k, lsj_with_any_k
            from .core.psj import PSJPartitioner

            k = num_partitions or 32
            theta_r = max(theta_r, 1.0)
            theta_s = max(theta_s, 1.0)
            if algorithm == "PSJ":
                partitioner = PSJPartitioner(k, seed=seed)
            elif algorithm == "DCJ":
                partitioner = dcj_with_any_k(k, theta_r, theta_s)
            elif algorithm == "LSJ":
                partitioner = lsj_with_any_k(k, theta_r, theta_s)
            else:
                raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        return build_plan_from_statistics(
            algorithm, k, r_size, s_size, max(theta_r, 1e-9),
            max(theta_s, 1e-9), self.model, partitioner=partitioner,
            signature_bits=signature_bits, engine=engine,
            page_size=self.disk.page_size,
        )

    def join(
        self,
        r_name: str,
        s_name: str,
        algorithm: str = "auto",
        num_partitions: int | None = None,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        engine: str = "numpy",
        seed: int = 0,
        workers: int = 1,
        backend: str = "serial",
        shard_timeout: float | None = None,
        shard_hook=None,
        tracer=None,
        query_id: int | None = None,
        partitioner=None,
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        """Set containment join of two stored relations (R ⊆ S side order).

        Runs directly over the stored B-trees; temporary partition data is
        written into the same file and reclaimed afterwards.  ``tracer``
        records a span tree of the run (see :mod:`repro.obs`).

        ``workers``/``backend``/``shard_timeout`` engage the
        partition-parallel engine exactly as on
        :class:`~repro.core.operator.SetContainmentJoin`; the query
        service uses ``shard_timeout`` to propagate per-query deadlines
        down to the shard level and ``shard_hook`` to inject chaos.
        Results are bit-identical at any worker count.

        ``partitioner`` bypasses planning entirely: the given partitioner
        runs as-is with no statistics sampling (the ablation harness uses
        this to pin the physical plan while varying one knob).
        """
        self._check_open()
        if partitioner is not None:
            pass
        elif algorithm == "auto":
            partitioner = self.plan(r_name, s_name).build_partitioner(seed=seed)
        else:
            from .core.modulo import dcj_with_any_k, lsj_with_any_k
            from .core.psj import PSJPartitioner

            k = num_partitions or 32
            __, theta_r = self._statistics(r_name)
            __, theta_s = self._statistics(s_name, seed=1)
            theta_r = max(theta_r, 1.0)
            theta_s = max(theta_s, 1.0)
            if algorithm == "PSJ":
                partitioner = PSJPartitioner(k, seed=seed)
            elif algorithm == "DCJ":
                partitioner = dcj_with_any_k(k, theta_r, theta_s)
            elif algorithm == "LSJ":
                partitioner = lsj_with_any_k(k, theta_r, theta_s)
            else:
                raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        testbed = Testbed.from_components(
            self.disk, self.pool, self.get_store(r_name), self.get_store(s_name)
        )
        join = SetContainmentJoin(
            testbed, partitioner, signature_bits=signature_bits,
            engine=engine, workers=workers, parallel_backend=backend,
            shard_timeout=shard_timeout, shard_hook=shard_hook,
            tracer=tracer, query_id=query_id,
        )
        pairs, metrics = join.run(cold_cache=False)
        # Publish to the process registry so long-lived sessions (and the
        # /metrics endpoint) accumulate join latency/work series.
        from .obs.registry import record_join

        record_join(metrics)
        return pairs, metrics

    def probe(self, name: str, elements: Iterable[int]) -> list[int]:
        """Point containment probe: tids of stored sets ⊇ ``elements``.

        The service's cheap read-only query class — a single scan of one
        relation, no partitioning, no temporary pages.  An empty probe
        set matches every tuple (∅ ⊆ anything), mirroring the join's
        containment semantics.
        """
        self._check_open()
        query = frozenset(elements)
        store = self.get_store(name)
        return [
            tid for tid, stored, __ in store.scan()
            if query.issubset(stored)
        ]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Storage-layer statistics for the ``db ... stats`` CLI action.

        Everything is read from live counters — no I/O happens beyond
        catalog lookups that are already cached.
        """
        self._check_open()
        pool_stats = self.pool.stats
        names = self.relation_names()
        out = {
            "relations": len(names),
            "tuples": sum(self.relation_size(name) for name in names),
            "pages": self.disk.num_pages,
            "page_size": self.disk.page_size,
            "page_reads": self.disk.stats.page_reads,
            "page_writes": self.disk.stats.page_writes,
            "buffer_capacity": self.pool.capacity,
            "buffer_pages_cached": len(self.pool),
            "buffer_hits": pool_stats.hits,
            "buffer_misses": pool_stats.misses,
            "buffer_hit_rate": pool_stats.hit_rate,
            "buffer_evictions": pool_stats.evictions,
            "buffer_dirty_writebacks": pool_stats.dirty_writebacks,
        }
        if isinstance(self.disk, WALDiskManager) and self.disk.wal is not None:
            out["wal_bytes"] = self.disk.wal.size_bytes
        from .obs.registry import get_registry

        latency = get_registry().get("setjoin_join_seconds")
        if latency is not None and latency.count:
            out["joins_recorded"] = latency.count
            out["join_latency_p50"] = latency.percentile(0.50)
            out["join_latency_p95"] = latency.percentile(0.95)
            out["join_latency_p99"] = latency.percentile(0.99)
        return out

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def verify_integrity(self) -> dict[str, int]:
        """Read every catalog-reachable page, verifying page checksums.

        Raises :class:`~repro.errors.CorruptPageError` (or another
        :class:`~repro.errors.StorageError`) on the first damaged page;
        returns counters describing what was checked otherwise.
        """
        self._check_open()
        # Cached frames were checksummed when first read; drop them so
        # every page comes off the disk and through the CRC again.
        self.pool.flush_all()
        self.pool.drop_all()
        before = self.disk.stats.snapshot()
        relations = 0
        tuples = 0
        for name in self.relation_names():
            relations += 1
            for __ in self.get_store(name).scan():
                tuples += 1
        delta = self.disk.stats.delta(before)
        return {
            "relations": relations,
            "tuples": tuples,
            "pages_read": delta.page_reads,
        }

    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("database is closed")

    def close(self) -> None:
        if not self._closed:
            self.pool.flush_all()
            self.disk.close()
            self._closed = True

    def kill(self) -> None:
        """Abandon the database without flushing: simulates a crash.

        Dirty buffer-pool frames are dropped and file handles are closed
        without syncing.  Used by the fault-injection harness; production
        code should call :meth:`close`.
        """
        if not self._closed:
            self.pool.invalidate()
            self.disk.kill()
            self._closed = True

    def __enter__(self) -> "SetJoinDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
